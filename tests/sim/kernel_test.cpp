#include "sim/kernel.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  return params;
}

TEST(KernelTest, ClockAdvancesWithEvents) {
  SimKernel kernel(QuietNet());
  EXPECT_EQ(kernel.Now(), SimTime::Zero());
  std::vector<std::int64_t> seen;
  kernel.ScheduleAfter(Duration::Millis(5),
                       [&] { seen.push_back(kernel.Now().micros()); });
  kernel.ScheduleAfter(Duration::Millis(2),
                       [&] { seen.push_back(kernel.Now().micros()); });
  kernel.Run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2000, 5000}));
}

TEST(KernelTest, RunUntilStopsAtHorizon) {
  SimKernel kernel(QuietNet());
  bool late_ran = false;
  kernel.ScheduleAt(SimTime(100), [] {});
  kernel.ScheduleAt(SimTime(1000), [&] { late_ran = true; });
  const std::uint64_t executed = kernel.RunUntil(SimTime(500));
  EXPECT_EQ(executed, 1u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(kernel.Now(), SimTime(500));
  kernel.Run();
  EXPECT_TRUE(late_ran);
}

TEST(KernelTest, CancelScheduledEvent) {
  SimKernel kernel(QuietNet());
  bool ran = false;
  EventId id = kernel.ScheduleAfter(Duration::Millis(1), [&] { ran = true; });
  EXPECT_TRUE(kernel.Cancel(id));
  kernel.Run();
  EXPECT_FALSE(ran);
}

TEST(KernelTest, PeriodicFiresRepeatedly) {
  SimKernel kernel(QuietNet());
  int fires = 0;
  kernel.SchedulePeriodic(Duration::Seconds(1), [&] { ++fires; });
  kernel.RunUntil(SimTime::Zero() + Duration::Seconds(10.5));
  EXPECT_EQ(fires, 10);
}

TEST(KernelTest, PeriodicCancelStops) {
  SimKernel kernel(QuietNet());
  int fires = 0;
  auto id = kernel.SchedulePeriodic(Duration::Seconds(1), [&] { ++fires; });
  kernel.RunUntil(SimTime::Zero() + Duration::Seconds(3.5));
  kernel.CancelPeriodic(id);
  kernel.RunUntil(SimTime::Zero() + Duration::Seconds(10));
  EXPECT_EQ(fires, 3);
}

TEST(KernelTest, PeriodicCanCancelItself) {
  SimKernel kernel(QuietNet());
  int fires = 0;
  SimKernel::PeriodicId id = 0;
  id = kernel.SchedulePeriodic(Duration::Seconds(1), [&] {
    if (++fires == 2) kernel.CancelPeriodic(id);
  });
  kernel.RunUntil(SimTime::Zero() + Duration::Seconds(10));
  EXPECT_EQ(fires, 2);
}

TEST(KernelTest, ActorLifecycle) {
  SimKernel kernel(QuietNet());
  const Loid loid = kernel.minter().Mint(LoidSpace::kObject, 0);
  auto* actor = kernel.AddActor<Actor>(loid);
  EXPECT_EQ(kernel.FindActor(loid), actor);
  EXPECT_EQ(kernel.actor_count(), 1u);
  kernel.RemoveActor(loid);
  EXPECT_EQ(kernel.FindActor(loid), nullptr);
  EXPECT_EQ(kernel.actor_count(), 0u);
}

TEST(KernelTest, SendPaysNetworkLatency) {
  NetworkParams params = QuietNet();
  params.intra_domain_latency = Duration::Millis(1);
  SimKernel kernel(params);
  const Loid a(LoidSpace::kObject, 0, 1);
  const Loid b(LoidSpace::kObject, 0, 2);
  kernel.network().RegisterEndpoint(a, 0);
  kernel.network().RegisterEndpoint(b, 0);
  SimTime delivered;
  kernel.Send(a, b, 100, [&] { delivered = kernel.Now(); });
  kernel.Run();
  EXPECT_GE(delivered, SimTime(1000));
  EXPECT_EQ(kernel.stats().messages_sent, 1u);
  EXPECT_EQ(kernel.stats().bytes_sent, 100u);
}

TEST(KernelTest, AsyncCallDeliversReply) {
  SimKernel kernel(QuietNet());
  const Loid a(LoidSpace::kObject, 0, 1);
  const Loid b(LoidSpace::kObject, 0, 2);
  Result<int> got(0);
  kernel.AsyncCall<int>(
      a, b, 64, 64, Duration::Seconds(5),
      [](Callback<int> reply) { reply(41 + 1); },
      [&](Result<int> r) { got = std::move(r); });
  kernel.Run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(kernel.stats().rpcs_started, 1u);
  EXPECT_EQ(kernel.stats().rpcs_completed, 1u);
  EXPECT_EQ(kernel.stats().rpcs_timed_out, 0u);
}

TEST(KernelTest, AsyncCallTimesOutWhenCalleeSilent) {
  SimKernel kernel(QuietNet());
  const Loid a(LoidSpace::kObject, 0, 1);
  const Loid b(LoidSpace::kObject, 0, 2);
  Result<int> got(0);
  bool fired = false;
  kernel.AsyncCall<int>(
      a, b, 64, 64, Duration::Seconds(5),
      [](Callback<int>) { /* never replies */ },
      [&](Result<int> r) {
        fired = true;
        got = std::move(r);
      });
  kernel.Run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kTimeout);
  EXPECT_EQ(kernel.stats().rpcs_timed_out, 1u);
}

TEST(KernelTest, AsyncCallTimesOutOnDroppedRequest) {
  NetworkParams params = QuietNet();
  params.intra_domain_loss = 1.0;  // everything is lost
  SimKernel kernel(params);
  const Loid a(LoidSpace::kObject, 0, 1);
  const Loid b(LoidSpace::kObject, 0, 2);
  kernel.network().RegisterEndpoint(a, 0);
  kernel.network().RegisterEndpoint(b, 0);
  bool callee_ran = false;
  Result<int> got(0);
  kernel.AsyncCall<int>(
      a, b, 64, 64, Duration::Seconds(1),
      [&](Callback<int> reply) {
        callee_ran = true;
        reply(1);
      },
      [&](Result<int> r) { got = std::move(r); });
  kernel.Run();
  EXPECT_FALSE(callee_ran);
  EXPECT_EQ(got.code(), ErrorCode::kTimeout);
  EXPECT_EQ(kernel.stats().messages_dropped, 1u);
}

TEST(KernelTest, AsyncCallDoneFiresExactlyOnce) {
  SimKernel kernel(QuietNet());
  const Loid a(LoidSpace::kObject, 0, 1);
  const Loid b(LoidSpace::kObject, 0, 2);
  int calls = 0;
  kernel.AsyncCall<int>(
      a, b, 64, 64, Duration::Millis(1),
      [&kernel](Callback<int> reply) {
        // Reply *after* the timeout has already fired.
        kernel.ScheduleAfter(Duration::Seconds(1),
                             [reply] { reply(7); });
      },
      [&](Result<int>) { ++calls; });
  kernel.Run();
  EXPECT_EQ(calls, 1);
}

TEST(KernelTest, StatsResetWorks) {
  SimKernel kernel(QuietNet());
  kernel.ScheduleAfter(Duration::Millis(1), [] {});
  kernel.Run();
  EXPECT_GT(kernel.stats().events_run, 0u);
  kernel.ResetStats();
  EXPECT_EQ(kernel.stats().events_run, 0u);
}

}  // namespace
}  // namespace legion
