#include "base/attributes.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(AttrValueTest, TypePredicates) {
  EXPECT_TRUE(AttrValue().is_null());
  EXPECT_TRUE(AttrValue(true).is_bool());
  EXPECT_TRUE(AttrValue(std::int64_t{5}).is_int());
  EXPECT_TRUE(AttrValue(5).is_int());
  EXPECT_TRUE(AttrValue(2.5).is_double());
  EXPECT_TRUE(AttrValue("hi").is_string());
  EXPECT_TRUE(AttrValue(AttrList{AttrValue(1)}).is_list());
  EXPECT_TRUE(AttrValue(5).is_numeric());
  EXPECT_TRUE(AttrValue(5.0).is_numeric());
  EXPECT_FALSE(AttrValue("5").is_numeric());
}

TEST(AttrValueTest, NumericEqualityCrossesIntDouble) {
  EXPECT_EQ(AttrValue(5), AttrValue(5.0));
  EXPECT_EQ(AttrValue(5.0), AttrValue(5));
  EXPECT_NE(AttrValue(5), AttrValue(5.5));
  EXPECT_NE(AttrValue(5), AttrValue("5"));
}

TEST(AttrValueTest, Truthiness) {
  EXPECT_FALSE(AttrValue().Truthy());
  EXPECT_FALSE(AttrValue(false).Truthy());
  EXPECT_TRUE(AttrValue(true).Truthy());
  EXPECT_FALSE(AttrValue(0).Truthy());
  EXPECT_TRUE(AttrValue(-1).Truthy());
  EXPECT_FALSE(AttrValue(0.0).Truthy());
  EXPECT_TRUE(AttrValue(0.1).Truthy());
  EXPECT_FALSE(AttrValue("").Truthy());
  EXPECT_TRUE(AttrValue("x").Truthy());
  EXPECT_FALSE(AttrValue(AttrList{}).Truthy());
  EXPECT_TRUE(AttrValue(AttrList{AttrValue(0)}).Truthy());
}

TEST(AttrValueTest, CompareNumbers) {
  EXPECT_EQ(CompareAttrValues(AttrValue(1), AttrValue(2)), -1);
  EXPECT_EQ(CompareAttrValues(AttrValue(2), AttrValue(1)), 1);
  EXPECT_EQ(CompareAttrValues(AttrValue(2), AttrValue(2)), 0);
  EXPECT_EQ(CompareAttrValues(AttrValue(1.5), AttrValue(2)), -1);
  EXPECT_EQ(CompareAttrValues(AttrValue(2), AttrValue(1.5)), 1);
}

TEST(AttrValueTest, CompareStrings) {
  EXPECT_EQ(CompareAttrValues(AttrValue("a"), AttrValue("b")), -1);
  EXPECT_EQ(CompareAttrValues(AttrValue("b"), AttrValue("a")), 1);
  EXPECT_EQ(CompareAttrValues(AttrValue("a"), AttrValue("a")), 0);
}

TEST(AttrValueTest, CompareIncomparableIsNullopt) {
  EXPECT_FALSE(CompareAttrValues(AttrValue("a"), AttrValue(1)).has_value());
  EXPECT_FALSE(CompareAttrValues(AttrValue(), AttrValue(1)).has_value());
  EXPECT_FALSE(
      CompareAttrValues(AttrValue(AttrList{}), AttrValue(1)).has_value());
}

TEST(AttrValueTest, ToStringRendering) {
  EXPECT_EQ(AttrValue().ToString(), "null");
  EXPECT_EQ(AttrValue(true).ToString(), "true");
  EXPECT_EQ(AttrValue(42).ToString(), "42");
  EXPECT_EQ(AttrValue("hi").ToString(), "\"hi\"");
  EXPECT_EQ(AttrValue(AttrList{AttrValue(1), AttrValue("a")}).ToString(),
            "[1, \"a\"]");
}

TEST(AttributeDatabaseTest, SetGetErase) {
  AttributeDatabase db;
  EXPECT_TRUE(db.empty());
  db.Set("load", 0.5);
  ASSERT_NE(db.Get("load"), nullptr);
  EXPECT_EQ(db.Get("load")->as_double(), 0.5);
  EXPECT_EQ(db.Get("missing"), nullptr);
  EXPECT_TRUE(db.Has("load"));
  EXPECT_TRUE(db.Erase("load"));
  EXPECT_FALSE(db.Erase("load"));
  EXPECT_FALSE(db.Has("load"));
}

TEST(AttributeDatabaseTest, GetOrFallsBack) {
  AttributeDatabase db;
  db.Set("x", 1);
  EXPECT_EQ(db.GetOr("x", AttrValue(9)).as_int(), 1);
  EXPECT_EQ(db.GetOr("y", AttrValue(9)).as_int(), 9);
}

TEST(AttributeDatabaseTest, VersionBumpsOnEveryMutation) {
  AttributeDatabase db;
  const auto v0 = db.version();
  db.Set("a", 1);
  const auto v1 = db.version();
  EXPECT_GT(v1, v0);
  db.Set("a", 2);  // overwrite still counts
  const auto v2 = db.version();
  EXPECT_GT(v2, v1);
  db.Erase("a");
  EXPECT_GT(db.version(), v2);
}

TEST(AttributeDatabaseTest, MergeFromOverwrites) {
  AttributeDatabase a, b;
  a.Set("x", 1);
  a.Set("y", 1);
  b.Set("y", 2);
  b.Set("z", 3);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x")->as_int(), 1);
  EXPECT_EQ(a.Get("y")->as_int(), 2);
  EXPECT_EQ(a.Get("z")->as_int(), 3);
  EXPECT_EQ(a.size(), 3u);
}

TEST(AttributeDatabaseTest, IterationIsSortedByName) {
  AttributeDatabase db;
  db.Set("zeta", 1);
  db.Set("alpha", 2);
  db.Set("mid", 3);
  std::vector<std::string> names;
  for (const auto& [name, value] : db) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace legion
