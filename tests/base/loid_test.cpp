#include "base/loid.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace legion {
namespace {

TEST(LoidTest, DefaultIsInvalid) {
  Loid loid;
  EXPECT_FALSE(loid.valid());
  EXPECT_EQ(loid.space(), LoidSpace::kInvalid);
}

TEST(LoidTest, FieldsRoundTrip) {
  Loid loid(LoidSpace::kHost, 7, 42);
  EXPECT_TRUE(loid.valid());
  EXPECT_EQ(loid.space(), LoidSpace::kHost);
  EXPECT_EQ(loid.domain(), 7u);
  EXPECT_EQ(loid.serial(), 42u);
}

TEST(LoidTest, EqualityAndOrdering) {
  Loid a(LoidSpace::kHost, 1, 1);
  Loid b(LoidSpace::kHost, 1, 2);
  Loid c(LoidSpace::kVault, 1, 1);
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // host space sorts before vault space
}

TEST(LoidTest, ToStringFormat) {
  EXPECT_EQ(Loid(LoidSpace::kHost, 3, 17).ToString(), "host:3/17");
  EXPECT_EQ(Loid(LoidSpace::kClass, 0, 1).ToString(), "class:0/1");
  EXPECT_EQ(Loid(LoidSpace::kVault, 2, 9).ToString(), "vault:2/9");
  EXPECT_EQ(Loid(LoidSpace::kObject, 1, 5).ToString(), "object:1/5");
  EXPECT_EQ(Loid(LoidSpace::kService, 0, 2).ToString(), "service:0/2");
}

TEST(LoidTest, ParseRoundTripsEverySpace) {
  for (auto space : {LoidSpace::kClass, LoidSpace::kHost, LoidSpace::kVault,
                     LoidSpace::kObject, LoidSpace::kService}) {
    Loid original(space, 12, 345);
    auto parsed = ParseLoid(original.ToString());
    ASSERT_TRUE(parsed.has_value()) << original.ToString();
    EXPECT_EQ(*parsed, original);
  }
}

TEST(LoidTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseLoid("").has_value());
  EXPECT_FALSE(ParseLoid("host").has_value());
  EXPECT_FALSE(ParseLoid("host:").has_value());
  EXPECT_FALSE(ParseLoid("host:3").has_value());
  EXPECT_FALSE(ParseLoid("plane:3/17").has_value());
  EXPECT_FALSE(ParseLoid("host:x/17").has_value());
  EXPECT_FALSE(ParseLoid("host:3/abc").has_value());
  EXPECT_FALSE(ParseLoid("host:3/17trailing").has_value());
}

TEST(LoidTest, HashDistributesAndMatchesEquality) {
  std::unordered_set<Loid> set;
  for (std::uint32_t d = 0; d < 10; ++d) {
    for (std::uint64_t s = 0; s < 100; ++s) {
      set.insert(Loid(LoidSpace::kHost, d, s));
    }
  }
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(set.count(Loid(LoidSpace::kHost, 5, 50)));
  EXPECT_FALSE(set.count(Loid(LoidSpace::kVault, 5, 50)));
}

TEST(LoidMinterTest, MintsUniqueSerials) {
  LoidMinter minter;
  std::set<Loid> minted;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(minted.insert(minter.Mint(LoidSpace::kObject, 0)).second);
  }
  // Different spaces/domains still draw from one serial stream, so no
  // two minted LOIDs ever collide.
  EXPECT_TRUE(minted.insert(minter.Mint(LoidSpace::kHost, 1)).second);
}

TEST(LoidTest, PackHalvesDifferentiate) {
  Loid a(LoidSpace::kHost, 1, 2);
  Loid b(LoidSpace::kHost, 2, 1);
  EXPECT_NE(a.pack_hi(), b.pack_hi());
  EXPECT_NE(a.pack_lo(), b.pack_lo());
}

}  // namespace
}  // namespace legion
