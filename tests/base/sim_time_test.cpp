#include "base/sim_time.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::Micros(5).micros(), 5);
  EXPECT_EQ(Duration::Millis(5).micros(), 5000);
  EXPECT_EQ(Duration::Seconds(1.5).micros(), 1500000);
  EXPECT_EQ(Duration::Minutes(2).micros(), 120000000);
  EXPECT_EQ(Duration::Hours(1).micros(), 3600000000LL);
  EXPECT_TRUE(Duration::Zero().is_zero());
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Seconds(2);
  const Duration b = Duration::Seconds(0.5);
  EXPECT_EQ((a + b).seconds(), 2.5);
  EXPECT_EQ((a - b).seconds(), 1.5);
  EXPECT_EQ((a * 2.0).seconds(), 4.0);
  EXPECT_EQ((2.0 * a).seconds(), 4.0);
  EXPECT_EQ((a / 4.0).seconds(), 0.5);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.seconds(), 2.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_LE(Duration::Millis(2), Duration::Millis(2));
  EXPECT_GT(Duration::Seconds(1), Duration::Millis(999));
  EXPECT_EQ(Duration::Seconds(1), Duration::Millis(1000));
}

TEST(DurationTest, UnitConversions) {
  const Duration d = Duration::Micros(2500000);
  EXPECT_DOUBLE_EQ(d.seconds(), 2.5);
  EXPECT_DOUBLE_EQ(d.millis(), 2500.0);
}

TEST(SimTimeTest, PointArithmetic) {
  const SimTime t0 = SimTime::Zero();
  const SimTime t1 = t0 + Duration::Seconds(10);
  EXPECT_EQ(t1.micros(), 10000000);
  EXPECT_EQ((t1 - t0).seconds(), 10.0);
  EXPECT_EQ((t1 - Duration::Seconds(4)).micros(), 6000000);
  EXPECT_LT(t0, t1);
  EXPECT_GT(SimTime::Max(), t1);
}

TEST(SimTimeTest, NegativeDurationsBehave) {
  const Duration d = Duration::Seconds(1) - Duration::Seconds(3);
  EXPECT_EQ(d.seconds(), -2.0);
  EXPECT_LT(d, Duration::Zero());
}

TEST(SimTimeTest, ToStringForms) {
  EXPECT_EQ(Duration::Millis(5).ToString(), "5000us");
  EXPECT_EQ(SimTime(42).ToString(), "t=42us");
}

TEST(DurationTest, InfiniteIsHuge) {
  EXPECT_GT(Duration::Infinite(), Duration::Hours(24 * 365 * 100));
}

}  // namespace
}  // namespace legion
