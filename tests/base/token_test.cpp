#include "base/token.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

Loid HostLoid() { return Loid(LoidSpace::kHost, 1, 10); }
Loid VaultLoid() { return Loid(LoidSpace::kVault, 1, 20); }

TEST(ReservationTypeTest, TableTwoCombinations) {
  // Table 2: the four reservation types from the two bits.
  EXPECT_EQ(ReservationType::OneShotSpaceSharing().bits(), 0);
  EXPECT_EQ(ReservationType::ReusableSpaceSharing().bits(), 2);
  EXPECT_EQ(ReservationType::OneShotTimesharing().bits(), 1);
  EXPECT_EQ(ReservationType::ReusableTimesharing().bits(), 3);
}

TEST(ReservationTypeTest, PaperNamings) {
  EXPECT_EQ(ReservationType::OneShotSpaceSharing().ToString(),
            "one-shot space sharing");
  EXPECT_EQ(ReservationType::ReusableSpaceSharing().ToString(),
            "reusable space sharing");
  EXPECT_EQ(ReservationType::OneShotTimesharing().ToString(),
            "one-shot timesharing");
  EXPECT_EQ(ReservationType::ReusableTimesharing().ToString(),
            "reusable timesharing");
}

TEST(TokenAuthorityTest, IssuedTokenVerifies) {
  TokenAuthority authority(42);
  ReservationToken token = authority.Issue(
      HostLoid(), VaultLoid(), SimTime(1000), Duration::Hours(1),
      Duration::Minutes(5), ReservationType::OneShotTimesharing());
  EXPECT_TRUE(token.valid());
  EXPECT_EQ(token.host, HostLoid());
  EXPECT_EQ(token.vault, VaultLoid());
  EXPECT_TRUE(authority.Verify(token));
}

TEST(TokenAuthorityTest, SerialsAreUnique) {
  TokenAuthority authority(42);
  auto t1 = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                            Duration::Hours(1), Duration::Zero(),
                            ReservationType::OneShotTimesharing());
  auto t2 = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                            Duration::Hours(1), Duration::Zero(),
                            ReservationType::OneShotTimesharing());
  EXPECT_NE(t1.serial, t2.serial);
}

TEST(TokenAuthorityTest, TamperedFieldsFailVerification) {
  // Non-forgeability: flipping any encoded field invalidates the MAC.
  TokenAuthority authority(42);
  const ReservationToken original = authority.Issue(
      HostLoid(), VaultLoid(), SimTime(1000), Duration::Hours(1),
      Duration::Minutes(5), ReservationType::OneShotTimesharing());

  ReservationToken t = original;
  t.vault = Loid(LoidSpace::kVault, 1, 99);
  EXPECT_FALSE(authority.Verify(t));

  t = original;
  t.start = SimTime(2000);
  EXPECT_FALSE(authority.Verify(t));

  t = original;
  t.duration = Duration::Hours(2);
  EXPECT_FALSE(authority.Verify(t));

  t = original;
  t.type = ReservationType::ReusableTimesharing();
  EXPECT_FALSE(authority.Verify(t));

  t = original;
  t.serial += 1;
  EXPECT_FALSE(authority.Verify(t));
}

TEST(TokenAuthorityTest, OtherAuthorityCannotForge) {
  // Only the issuing host recognizes its tokens (paper 3.1).
  TokenAuthority issuer(42);
  TokenAuthority impostor(43);
  ReservationToken forged = impostor.Issue(
      HostLoid(), VaultLoid(), SimTime(0), Duration::Hours(1),
      Duration::Zero(), ReservationType::OneShotTimesharing());
  EXPECT_FALSE(issuer.Verify(forged));
}

TEST(TokenAuthorityTest, InvalidTokenNeverVerifies) {
  TokenAuthority authority(42);
  ReservationToken blank;
  EXPECT_FALSE(blank.valid());
  EXPECT_FALSE(authority.Verify(blank));
}

TEST(TokenTest, EqualityOnHostSerialMac) {
  TokenAuthority authority(42);
  auto t = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                           Duration::Hours(1), Duration::Zero(),
                           ReservationType::ReusableTimesharing());
  ReservationToken copy = t;
  EXPECT_EQ(copy, t);
}

}  // namespace
}  // namespace legion
