#include "base/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace legion {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(41), b(41);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // Fork and parent streams differ.
  Rng c(43);
  Rng fc = c.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.Next() == fc.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace legion
