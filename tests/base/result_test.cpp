#include "base/result.h"

#include <gtest/gtest.h>

#include <string>

namespace legion {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Error(ErrorCode::kNoResources, "out of CPUs");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNoResources);
  EXPECT_EQ(s.message(), "out of CPUs");
  EXPECT_EQ(s.ToString(), "NO_RESOURCES: out of CPUs");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (auto code :
       {ErrorCode::kOk, ErrorCode::kNoResources, ErrorCode::kMalformedSchedule,
        ErrorCode::kRefused, ErrorCode::kInvalidToken, ErrorCode::kExpired,
        ErrorCode::kNotFound, ErrorCode::kTimeout, ErrorCode::kUnavailable,
        ErrorCode::kAlreadyExists, ErrorCode::kInvalidArgument,
        ErrorCode::kInternal}) {
    EXPECT_STRNE(ToString(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kTimeout, "too slow");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  EXPECT_EQ(r.status().message(), "too slow");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(*r);
  EXPECT_EQ(*taken, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, StatusConversionPreservesCode) {
  Status s = Status::Error(ErrorCode::kRefused, "policy");
  Result<double> r(s);
  EXPECT_EQ(r.code(), ErrorCode::kRefused);
  EXPECT_EQ(r.status().message(), "policy");
}

}  // namespace
}  // namespace legion
