#include "base/bitmap.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(BitmapTest, StartsClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Any());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitmapTest, SetClearAssign) {
  Bitmap b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  b.Assign(1, true);
  b.Assign(0, false);
  EXPECT_TRUE(b.Test(1));
  EXPECT_FALSE(b.Test(0));
}

TEST(BitmapTest, FindFirst) {
  Bitmap b(130);
  EXPECT_EQ(b.FindFirst(), 130u);
  b.Set(128);
  EXPECT_EQ(b.FindFirst(), 128u);
  b.Set(5);
  EXPECT_EQ(b.FindFirst(), 5u);
}

TEST(BitmapTest, Intersects) {
  Bitmap a(64), b(64);
  a.Set(10);
  b.Set(11);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(10);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitmapTest, CoversSemantics) {
  Bitmap big(10), small(10);
  big.Set(1);
  big.Set(3);
  big.Set(5);
  small.Set(3);
  EXPECT_TRUE(big.Covers(small));
  EXPECT_FALSE(small.Covers(big));
  small.Set(7);
  EXPECT_FALSE(big.Covers(small));
  // Everything covers the empty bitmap.
  EXPECT_TRUE(big.Covers(Bitmap(10)));
  EXPECT_TRUE(Bitmap(10).Covers(Bitmap(10)));
}

TEST(BitmapTest, EqualityAndToString) {
  Bitmap a(4), b(4);
  a.Set(1);
  EXPECT_NE(a, b);
  b.Set(1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "0100");
}

TEST(BitmapTest, ResizeClears) {
  Bitmap b(8);
  b.Set(3);
  b.Resize(16);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(b.Count(), 0u);
}

// The variant-selection property the Enactor relies on: a variant bitmap
// covering the failed set can always be found by linear scan, and
// Covers == all failed bits are replaced.
TEST(BitmapTest, VariantCoverageScan) {
  const std::size_t n = 12;
  std::vector<Bitmap> variants;
  for (std::size_t i = 0; i < n; ++i) {
    Bitmap v(n);
    v.Set(i);
    v.Set((i + 1) % n);
    variants.push_back(v);
  }
  Bitmap failed(n);
  failed.Set(4);
  failed.Set(5);
  std::size_t found = variants.size();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (variants[i].Covers(failed)) {
      found = i;
      break;
    }
  }
  ASSERT_LT(found, variants.size());
  EXPECT_EQ(found, 4u);  // variant 4 covers bits {4,5}
}

}  // namespace
}  // namespace legion
