#include "base/serialize.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(SerializeTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteDouble(3.14159);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, StringsRoundTrip) {
  ByteWriter w;
  w.WriteString("");
  w.WriteString("hello world");
  w.WriteString(std::string("with\0nul", 8));
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadString(), "hello world");
  EXPECT_EQ(*r.ReadString(), std::string("with\0nul", 8));
}

TEST(SerializeTest, LoidRoundTrip) {
  ByteWriter w;
  w.WriteLoid(Loid(LoidSpace::kVault, 9, 123456789));
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadLoid(), Loid(LoidSpace::kVault, 9, 123456789));
}

TEST(SerializeTest, TimeTypesRoundTrip) {
  ByteWriter w;
  w.WriteDuration(Duration::Seconds(1.5));
  w.WriteTime(SimTime(987654321));
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadDuration(), Duration::Seconds(1.5));
  EXPECT_EQ(*r.ReadTime(), SimTime(987654321));
}

TEST(SerializeTest, AttrValueAllTypesRoundTrip) {
  ByteWriter w;
  w.WriteAttrValue(AttrValue());
  w.WriteAttrValue(AttrValue(true));
  w.WriteAttrValue(AttrValue(-7));
  w.WriteAttrValue(AttrValue(2.5));
  w.WriteAttrValue(AttrValue("text"));
  w.WriteAttrValue(
      AttrValue(AttrList{AttrValue(1), AttrValue("nested"),
                         AttrValue(AttrList{AttrValue(true)})}));
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadAttrValue()->is_null());
  EXPECT_TRUE(r.ReadAttrValue()->as_bool());
  EXPECT_EQ(r.ReadAttrValue()->as_int(), -7);
  EXPECT_DOUBLE_EQ(r.ReadAttrValue()->as_double(), 2.5);
  EXPECT_EQ(r.ReadAttrValue()->as_string(), "text");
  auto list = *r.ReadAttrValue();
  ASSERT_TRUE(list.is_list());
  ASSERT_EQ(list.as_list().size(), 3u);
  EXPECT_EQ(list.as_list()[0].as_int(), 1);
  EXPECT_EQ(list.as_list()[1].as_string(), "nested");
  EXPECT_TRUE(list.as_list()[2].as_list()[0].as_bool());
}

TEST(SerializeTest, AttributeDatabaseRoundTrip) {
  AttributeDatabase db;
  db.Set("arch", "x86");
  db.Set("load", 0.75);
  db.Set("cpus", 8);
  db.Set("vaults", AttrValue(AttrList{AttrValue("vault:0/1")}));
  ByteWriter w;
  w.WriteAttributes(db);
  ByteReader r(w.bytes());
  auto restored = r.ReadAttributes();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 4u);
  EXPECT_EQ(restored->Get("arch")->as_string(), "x86");
  EXPECT_DOUBLE_EQ(restored->Get("load")->as_double(), 0.75);
  EXPECT_EQ(restored->Get("cpus")->as_int(), 8);
}

TEST(SerializeTest, TruncatedBufferFailsCleanly) {
  ByteWriter w;
  w.WriteU64(1);
  auto bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(SerializeTest, TruncatedStringFailsCleanly) {
  ByteWriter w;
  w.WriteString("hello");
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 2);
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(SerializeTest, BadAttrTagFails) {
  std::vector<std::uint8_t> bytes{0xFF};
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadAttrValue().ok());
}

TEST(SerializeTest, EmptyReaderReportsExhausted) {
  std::vector<std::uint8_t> bytes;
  ByteReader r(bytes);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.ReadU8().ok());
}

}  // namespace
}  // namespace legion
