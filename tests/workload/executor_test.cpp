#include "workload/executor.h"

#include <gtest/gtest.h>

#include "test_world.h"
#include "workload/app_model.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : world_(testing::TestWorldConfig{.hosts = 4, .domains = 2}) {
    klass_ = world_.MakeClass("app");
  }

  std::vector<Loid> HostsByIndex(std::initializer_list<std::size_t> indices) {
    std::vector<Loid> hosts;
    for (std::size_t i : indices) hosts.push_back(world_.hosts[i]->loid());
    return hosts;
  }

  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(ExecutorTest, ComputeOnlyMakespan) {
  // 1000 MIPS-s on a default 100-MIPS idle host: 10 s x 4 iterations.
  ApplicationSpec app = MakeParameterStudy(1, 1000.0);
  app.iterations = 4;
  auto breakdown = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  EXPECT_NEAR(breakdown.makespan.seconds(), 40.0, 0.5);
  EXPECT_EQ(breakdown.total_edges, 0u);
  EXPECT_EQ(breakdown.inter_domain_edges, 0u);
}

TEST_F(ExecutorTest, BarrierWaitsForSlowest) {
  ApplicationSpec app = MakeParameterStudy(2, 1000.0);
  app.work[1] = 3000.0;  // one straggler
  auto breakdown =
      EstimateMakespan(world_.kernel, app, HostsByIndex({0, 1}));
  EXPECT_NEAR(breakdown.makespan.seconds(), 30.0, 0.5);
}

TEST_F(ExecutorTest, MultiplexedHostIsSlower) {
  ApplicationSpec app = MakeParameterStudy(1, 1000.0);
  auto idle = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  // Put 8 objects on host 0 (4 CPUs): everyone halves.
  for (int i = 0; i < 8; ++i) {
    PlacementSuggestion suggestion;
    suggestion.host = world_.hosts[0]->loid();
    suggestion.vault = world_.vaults[0]->loid();
    Await<Loid> placed;
    klass_->CreateInstance(suggestion, placed.Sink());
    world_.Run();
    ASSERT_TRUE(placed.Get().ok());
  }
  auto loaded = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  EXPECT_GT(loaded.makespan.seconds(), idle.makespan.seconds() * 1.8);
}

TEST_F(ExecutorTest, CrossDomainCommunicationDominates) {
  // Hosts 0 and 2 share domain 0; host 1 is in domain 1.
  ApplicationSpec app = MakeStencil2D(1, 2, 10.0, 64 * 1024, 100);
  auto local =
      EstimateMakespan(world_.kernel, app, HostsByIndex({0, 2}));
  auto wan = EstimateMakespan(world_.kernel, app, HostsByIndex({0, 1}));
  EXPECT_EQ(local.inter_domain_edges, 0u);
  EXPECT_EQ(wan.inter_domain_edges, 2u);
  EXPECT_GT(wan.comm_time, local.comm_time * 5.0);
  EXPECT_GT(wan.makespan, local.makespan);
}

TEST_F(ExecutorTest, DollarsTrackHostCost) {
  ApplicationSpec app = MakeParameterStudy(1, 1000.0);
  // Default TestWorld hosts cost nothing.
  auto free = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  EXPECT_DOUBLE_EQ(free.dollars, 0.0);
}

TEST_F(ExecutorTest, MismatchedPlacementYieldsZero) {
  ApplicationSpec app = MakeParameterStudy(3, 100.0);
  auto breakdown = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  EXPECT_EQ(breakdown.makespan, Duration::Zero());
}

TEST_F(ExecutorTest, HostsOfMappingsPreservesOrder) {
  std::vector<ObjectMapping> mappings(3);
  mappings[0].host = world_.hosts[2]->loid();
  mappings[1].host = world_.hosts[0]->loid();
  mappings[2].host = world_.hosts[1]->loid();
  auto hosts = HostsOfMappings(mappings);
  EXPECT_EQ(hosts[0], world_.hosts[2]->loid());
  EXPECT_EQ(hosts[1], world_.hosts[0]->loid());
  EXPECT_EQ(hosts[2], world_.hosts[1]->loid());
}

TEST_F(ExecutorTest, MaxHostLoadReported) {
  world_.hosts[0]->SpikeLoad(2.5);
  ApplicationSpec app = MakeParameterStudy(1, 100.0);
  auto breakdown = EstimateMakespan(world_.kernel, app, HostsByIndex({0}));
  EXPECT_GT(breakdown.max_host_load, 2.4);
}

}  // namespace
}  // namespace legion
