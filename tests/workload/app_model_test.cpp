#include "workload/app_model.h"

#include <gtest/gtest.h>

#include <set>

namespace legion {
namespace {

TEST(AppModelTest, ParameterStudyShape) {
  ApplicationSpec spec = MakeParameterStudy(10, 500.0);
  EXPECT_EQ(spec.instances, 10u);
  EXPECT_EQ(spec.work.size(), 10u);
  EXPECT_TRUE(spec.edges.empty());
  EXPECT_EQ(spec.iterations, 1u);
  for (double w : spec.work) EXPECT_DOUBLE_EQ(w, 500.0);
  EXPECT_DOUBLE_EQ(spec.total_work(), 5000.0);
}

TEST(AppModelTest, BagOfTasksIsHeavyTailedButBounded) {
  Rng rng(5);
  ApplicationSpec spec = MakeBagOfTasks(200, 100.0, rng);
  EXPECT_EQ(spec.instances, 200u);
  double min = 1e18, max = 0;
  for (double w : spec.work) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 100.0 * 20.0);
    min = std::min(min, w);
    max = std::max(max, w);
  }
  // Tails spread at least an order of magnitude.
  EXPECT_GT(max / min, 10.0);
}

TEST(AppModelTest, Stencil2DHasFourNeighbourEdges) {
  ApplicationSpec spec = MakeStencil2D(3, 4, 100.0, 1024, 5);
  EXPECT_EQ(spec.instances, 12u);
  EXPECT_EQ(spec.iterations, 5u);
  // Interior grid edges, both directions: 2*(rows*(cols-1) + cols*(rows-1)).
  EXPECT_EQ(spec.edges.size(), 2u * (3 * 3 + 4 * 2));
  for (const CommEdge& edge : spec.edges) {
    EXPECT_LT(edge.from, spec.instances);
    EXPECT_LT(edge.to, spec.instances);
    EXPECT_EQ(edge.bytes, 1024u);
    // Nearest neighbour: row-major distance of 1 or cols.
    const auto d = edge.from > edge.to ? edge.from - edge.to
                                       : edge.to - edge.from;
    EXPECT_TRUE(d == 1 || d == 4) << edge.from << "->" << edge.to;
  }
}

TEST(AppModelTest, StencilEdgesAreSymmetric) {
  ApplicationSpec spec = MakeStencil2D(3, 3, 100.0, 64, 1);
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (const CommEdge& edge : spec.edges) {
    edges.insert({edge.from, edge.to});
  }
  for (const CommEdge& edge : spec.edges) {
    EXPECT_TRUE(edges.count({edge.to, edge.from}));
  }
}

TEST(AppModelTest, SingleCellStencilHasNoEdges) {
  ApplicationSpec spec = MakeStencil2D(1, 1, 100.0, 64, 3);
  EXPECT_EQ(spec.instances, 1u);
  EXPECT_TRUE(spec.edges.empty());
}

TEST(AppModelTest, MasterWorkerStar) {
  ApplicationSpec spec = MakeMasterWorker(5, 200.0, 4096, 10);
  EXPECT_EQ(spec.instances, 6u);
  EXPECT_EQ(spec.edges.size(), 10u);  // scatter + gather per worker
  EXPECT_LT(spec.work[0], spec.work[1]);  // master mostly waits
  for (const CommEdge& edge : spec.edges) {
    EXPECT_TRUE(edge.from == 0 || edge.to == 0);
  }
}

}  // namespace
}  // namespace legion
