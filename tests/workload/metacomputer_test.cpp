#include "workload/metacomputer.h"

#include <gtest/gtest.h>

#include <set>

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  return params;
}

TEST(MetacomputerTest, BuildsRequestedTopology) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 3;
  config.hosts_per_domain = 5;
  config.vaults_per_domain = 2;
  config.seed = 1;
  Metacomputer metacomputer(&kernel, config);
  EXPECT_EQ(metacomputer.hosts().size(), 15u);
  EXPECT_EQ(metacomputer.vaults().size(), 6u);
  ASSERT_NE(metacomputer.collection(), nullptr);
  ASSERT_NE(metacomputer.enactor(), nullptr);
  ASSERT_NE(metacomputer.monitor(), nullptr);
  // Domains are balanced.
  std::map<std::uint32_t, int> per_domain;
  for (auto* host : metacomputer.hosts()) per_domain[host->spec().domain]++;
  EXPECT_EQ(per_domain.size(), 3u);
  for (const auto& [domain, count] : per_domain) EXPECT_EQ(count, 5);
}

TEST(MetacomputerTest, DeterministicForSameSeed) {
  auto names_of = [](std::uint64_t seed) {
    SimKernel kernel(QuietNet());
    MetacomputerConfig config;
    config.seed = seed;
    Metacomputer metacomputer(&kernel, config);
    std::vector<std::string> names;
    for (auto* host : metacomputer.hosts()) {
      names.push_back(host->spec().arch + "/" +
                      std::to_string(host->spec().cpus) + "/" +
                      std::to_string(host->spec().speed_mips));
    }
    return names;
  };
  EXPECT_EQ(names_of(7), names_of(7));
  EXPECT_NE(names_of(7), names_of(8));
}

TEST(MetacomputerTest, HeterogeneousMixesPlatforms) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 16;
  config.seed = 3;
  Metacomputer metacomputer(&kernel, config);
  std::set<std::string> arches;
  for (auto* host : metacomputer.hosts()) arches.insert(host->spec().arch);
  EXPECT_GE(arches.size(), 3u);
}

TEST(MetacomputerTest, HostKindMixRespectsFractions) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 20;
  config.batch_fraction = 0.3;
  config.maui_fraction = 0.2;
  config.smp_fraction = 0.2;
  config.seed = 11;
  Metacomputer metacomputer(&kernel, config);
  int batch = 0, maui = 0;
  for (auto* host : metacomputer.hosts()) {
    if (dynamic_cast<MauiHost*>(host) != nullptr) {
      ++maui;
    } else if (dynamic_cast<BatchQueueHost*>(host) != nullptr) {
      ++batch;
    }
  }
  EXPECT_GT(maui, 0);
  EXPECT_GT(batch, 0);
}

TEST(MetacomputerTest, PopulateCollectionPushesEveryHost) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 4;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  EXPECT_EQ(metacomputer.collection()->record_count(), 8u);
}

TEST(MetacomputerTest, HostsHaveCompatibleVaultsInTheirDomain) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  Metacomputer metacomputer(&kernel, config);
  for (auto* host : metacomputer.hosts()) {
    bool found = false;
    for (const auto& [name, value] : host->attributes()) {
      if (name == "compatible_vaults") {
        EXPECT_FALSE(value.as_list().empty());
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MetacomputerTest, UniversalClassMatchesEveryHost) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.seed = 5;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  auto* klass = metacomputer.MakeUniversalClass("everywhere");
  (void)klass;
  // Every host record matches at least one implementation's arch/OS.
  for (auto* host : metacomputer.hosts()) {
    bool matched = false;
    for (const Platform& platform : KnownPlatforms()) {
      if (host->spec().arch == platform.arch &&
          host->spec().os_name == platform.os_name) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << host->spec().name;
  }
}

TEST(MetacomputerTest, FindHostAndVaultResolve) {
  SimKernel kernel(QuietNet());
  Metacomputer metacomputer(&kernel, MetacomputerConfig{});
  auto* host = metacomputer.hosts().front();
  auto* vault = metacomputer.vaults().front();
  EXPECT_EQ(metacomputer.FindHost(host->loid()), host);
  EXPECT_EQ(metacomputer.FindVault(vault->loid()), vault);
  EXPECT_EQ(metacomputer.FindHost(Loid(LoidSpace::kHost, 0, 31337)), nullptr);
}

}  // namespace
}  // namespace legion
