#include "workload/metacomputer.h"

#include <gtest/gtest.h>

#include <set>

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  return params;
}

TEST(MetacomputerTest, BuildsRequestedTopology) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 3;
  config.hosts_per_domain = 5;
  config.vaults_per_domain = 2;
  config.seed = 1;
  Metacomputer metacomputer(&kernel, config);
  EXPECT_EQ(metacomputer.hosts().size(), 15u);
  EXPECT_EQ(metacomputer.vaults().size(), 6u);
  ASSERT_NE(metacomputer.collection(), nullptr);
  ASSERT_NE(metacomputer.enactor(), nullptr);
  ASSERT_NE(metacomputer.monitor(), nullptr);
  // Domains are balanced.
  std::map<std::uint32_t, int> per_domain;
  for (auto* host : metacomputer.hosts()) per_domain[host->spec().domain]++;
  EXPECT_EQ(per_domain.size(), 3u);
  for (const auto& [domain, count] : per_domain) EXPECT_EQ(count, 5);
}

TEST(MetacomputerTest, DeterministicForSameSeed) {
  auto names_of = [](std::uint64_t seed) {
    SimKernel kernel(QuietNet());
    MetacomputerConfig config;
    config.seed = seed;
    Metacomputer metacomputer(&kernel, config);
    std::vector<std::string> names;
    for (auto* host : metacomputer.hosts()) {
      names.push_back(host->spec().arch + "/" +
                      std::to_string(host->spec().cpus) + "/" +
                      std::to_string(host->spec().speed_mips));
    }
    return names;
  };
  EXPECT_EQ(names_of(7), names_of(7));
  EXPECT_NE(names_of(7), names_of(8));
}

TEST(MetacomputerTest, HeterogeneousMixesPlatforms) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 16;
  config.seed = 3;
  Metacomputer metacomputer(&kernel, config);
  std::set<std::string> arches;
  for (auto* host : metacomputer.hosts()) arches.insert(host->spec().arch);
  EXPECT_GE(arches.size(), 3u);
}

TEST(MetacomputerTest, HostKindMixRespectsFractions) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 20;
  config.batch_fraction = 0.3;
  config.maui_fraction = 0.2;
  config.smp_fraction = 0.2;
  config.seed = 11;
  Metacomputer metacomputer(&kernel, config);
  int batch = 0, maui = 0;
  for (auto* host : metacomputer.hosts()) {
    if (dynamic_cast<MauiHost*>(host) != nullptr) {
      ++maui;
    } else if (dynamic_cast<BatchQueueHost*>(host) != nullptr) {
      ++batch;
    }
  }
  EXPECT_GT(maui, 0);
  EXPECT_GT(batch, 0);
}

TEST(MetacomputerTest, PopulateCollectionPushesEveryHost) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 4;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  EXPECT_EQ(metacomputer.collection()->record_count(), 8u);
}

TEST(MetacomputerTest, HostsHaveCompatibleVaultsInTheirDomain) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  Metacomputer metacomputer(&kernel, config);
  for (auto* host : metacomputer.hosts()) {
    bool found = false;
    for (const auto& [name, value] : host->attributes()) {
      if (name == "compatible_vaults") {
        EXPECT_FALSE(value.as_list().empty());
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(MetacomputerTest, UniversalClassMatchesEveryHost) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.seed = 5;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  auto* klass = metacomputer.MakeUniversalClass("everywhere");
  (void)klass;
  // Every host record matches at least one implementation's arch/OS.
  for (auto* host : metacomputer.hosts()) {
    bool matched = false;
    for (const Platform& platform : KnownPlatforms()) {
      if (host->spec().arch == platform.arch &&
          host->spec().os_name == platform.os_name) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << host->spec().name;
  }
}

TEST(MetacomputerTest, ResetAllStatsWithLiveRecorderWindows) {
  SimKernel kernel(QuietNet());
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 2;
  config.seed = 5;
  Metacomputer metacomputer(&kernel, config);

  // A recorder window is open across the reset: the cumulative series
  // must clamp the post-reset delta to the new value instead of
  // reporting a negative window.
  obs::TimeSeriesRecorder& recorder = kernel.recorder();
  recorder.options().sample_period = Duration::Seconds(1);
  obs::Counter* messages =
      kernel.metrics().GetCounter("messages_sent", {{"component", "kernel"}});
  recorder.WatchCounter("kernel/messages_sent", messages);
  recorder.Start(kernel.Now());

  // Two populate rounds so the pre-reset total strictly exceeds any
  // single post-reset burst -- the straddling window must see a drop.
  metacomputer.PopulateCollection();
  metacomputer.PopulateCollection();
  metacomputer.Settle(Duration::Seconds(3));
  const std::uint64_t before_reset = messages->value();
  ASSERT_GT(before_reset, 0u);
  const std::size_t windows_before =
      recorder.samples("kernel/messages_sent").size();
  ASSERT_GT(windows_before, 0u);

  metacomputer.ResetAllStats();  // mid-window: counter drops to zero
  EXPECT_EQ(messages->value(), 0u);
  metacomputer.PopulateCollection();
  metacomputer.Settle(Duration::Seconds(3));

  const auto& samples = recorder.samples("kernel/messages_sent");
  ASSERT_GT(samples.size(), windows_before);
  bool saw_reset_window = false;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].delta, 0.0)
        << "cumulative series must never report a negative window";
    EXPECT_GE(samples[i].rate, 0.0);
    if (samples[i].value < samples[i - 1].value) {
      // The window that straddles the reset: delta clamps to the value
      // accumulated since the reset, not (new - old).
      EXPECT_DOUBLE_EQ(samples[i].delta, samples[i].value);
      saw_reset_window = true;
    }
  }
  EXPECT_TRUE(saw_reset_window);
  // The recorder stays armed through the reset.
  EXPECT_TRUE(recorder.active());
}

TEST(MetacomputerTest, FindHostAndVaultResolve) {
  SimKernel kernel(QuietNet());
  Metacomputer metacomputer(&kernel, MetacomputerConfig{});
  auto* host = metacomputer.hosts().front();
  auto* vault = metacomputer.vaults().front();
  EXPECT_EQ(metacomputer.FindHost(host->loid()), host);
  EXPECT_EQ(metacomputer.FindVault(vault->loid()), vault);
  EXPECT_EQ(metacomputer.FindHost(Loid(LoidSpace::kHost, 0, 31337)), nullptr);
}

}  // namespace
}  // namespace legion
