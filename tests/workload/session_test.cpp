#include "workload/session.h"

#include <gtest/gtest.h>

#include "core/schedulers/ranked_scheduler.h"
#include "workload/arrivals.h"

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  return params;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : kernel_(QuietNet()) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 6;
    config.heterogeneous = false;
    config.seed = 77;
    config.load.initial = 0.0;
    config.load.mean = 0.0;
    config.load.volatility = 0.0;
    metacomputer_ = std::make_unique<Metacomputer>(&kernel_, config);
    metacomputer_->PopulateCollection();
    scheduler_ = kernel_.AddActor<LoadAwareScheduler>(
        kernel_.minter().Mint(LoidSpace::kService, 0),
        metacomputer_->collection()->loid(),
        metacomputer_->enactor()->loid());
    session_ =
        std::make_unique<WorkloadSession>(metacomputer_.get(), scheduler_);
  }

  SimKernel kernel_;
  std::unique_ptr<Metacomputer> metacomputer_;
  LoadAwareScheduler* scheduler_;
  std::unique_ptr<WorkloadSession> session_;
};

TEST_F(SessionTest, SingleAppRunsAndCompletes) {
  ApplicationSpec app = MakeParameterStudy(4, /*work=*/1000.0);
  session_->Submit(app);
  kernel_.RunFor(Duration::Hours(1));
  ASSERT_EQ(session_->results().size(), 1u);
  const SessionAppResult& result = session_->results()[0];
  EXPECT_TRUE(result.placed);
  EXPECT_GT(result.finished_at, result.placed_at);
  // ~1000 MIPS-s on 50-500 MIPS hosts: turnaround seconds-to-minutes.
  EXPECT_GT(result.turnaround().seconds(), 1.0);
  EXPECT_LT(result.turnaround().seconds(), 600.0);
  // Hosts were freed at completion.
  for (auto* host : metacomputer_->hosts()) {
    EXPECT_EQ(host->running_count(), 0u);
  }
}

TEST_F(SessionTest, CompletionFreesCapacityForLaterArrivals) {
  // Apps sized so two can never run together (instances = all hosts,
  // full CPU).  Sequential arrivals must both complete.
  ApplicationSpec big = MakeParameterStudy(12, /*work=*/500.0);
  big.cpu_fraction_per_instance = 1.0;
  std::vector<SimTime> arrivals{kernel_.Now() + Duration::Seconds(1),
                                kernel_.Now() + Duration::Minutes(20)};
  session_->SubmitAt(big, arrivals);
  kernel_.RunFor(Duration::Hours(2));
  SessionStats stats = session_->Stats(Duration::Hours(2));
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(SessionTest, OverloadRejectsSomeApps) {
  // A burst far beyond capacity: placements fail once CPUs are committed.
  ApplicationSpec app = MakeParameterStudy(8, /*work=*/50000.0);
  app.cpu_fraction_per_instance = 1.0;
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 10; ++i) {
    arrivals.push_back(kernel_.Now() + Duration::Seconds(5 + i));
  }
  session_->SubmitAt(app, arrivals);
  kernel_.RunFor(Duration::Minutes(30));
  SessionStats stats = session_->Stats(Duration::Minutes(30));
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_LT(stats.placed, 10u);  // some were refused
  EXPECT_GT(stats.placed, 0u);
}

TEST_F(SessionTest, StatsAggregateSanely) {
  ApplicationSpec app = MakeParameterStudy(2, /*work=*/500.0);
  app.cpu_fraction_per_instance = 0.25;
  std::vector<SimTime> arrivals;
  Rng rng(5);
  for (const SimTime& t :
       PoissonArrivals(rng, 1.0 / 60.0, kernel_.Now(), Duration::Hours(1))) {
    arrivals.push_back(t);
  }
  session_->SubmitAt(app, arrivals);
  kernel_.RunFor(Duration::Hours(2));
  SessionStats stats = session_->Stats(Duration::Hours(2));
  EXPECT_EQ(stats.offered, arrivals.size());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_LE(stats.completed, stats.placed);
  EXPECT_GE(stats.p95_turnaround_s, stats.mean_turnaround_s * 0.5);
  EXPECT_GT(stats.throughput_per_hour, 0.0);
  EXPECT_GE(stats.mean_turnaround_s, stats.mean_wait_s);
}

TEST_F(SessionTest, PoissonArrivalsRespectHorizon) {
  Rng rng(9);
  auto arrivals = PoissonArrivals(rng, 0.1, SimTime(1000), Duration::Minutes(10));
  for (const SimTime& t : arrivals) {
    EXPECT_GE(t, SimTime(1000));
    EXPECT_LT(t, SimTime(1000) + Duration::Minutes(10));
  }
  // Rough rate check: 0.1/s over 600s => ~60 arrivals.
  EXPECT_GT(arrivals.size(), 30u);
  EXPECT_LT(arrivals.size(), 100u);
  // Zero rate: none.
  EXPECT_TRUE(PoissonArrivals(rng, 0.0, SimTime(0), Duration::Hours(1)).empty());
}

}  // namespace
}  // namespace legion
