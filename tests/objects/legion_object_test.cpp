#include "objects/legion_object.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

Loid ObjLoid() { return Loid(LoidSpace::kObject, 0, 50); }
Loid ClassLoid() { return Loid(LoidSpace::kClass, 0, 9); }
Loid HostLoid() { return Loid(LoidSpace::kHost, 0, 1); }
Loid VaultLoid() { return Loid(LoidSpace::kVault, 0, 2); }

// A subclass with custom body state, to exercise the OPR extension
// points.
class CounterObject : public LegionObject {
 public:
  CounterObject(SimKernel* kernel, Loid loid)
      : LegionObject(kernel, loid, ClassLoid()) {}

  int counter = 0;
  int activations = 0;
  int deactivations = 0;

 protected:
  void OnActivate() override { ++activations; }
  void OnDeactivate() override { ++deactivations; }
  void SerializeBody(ByteWriter& writer) const override {
    writer.WriteI64(counter);
  }
  Status DeserializeBody(ByteReader& reader) override {
    auto v = reader.ReadI64();
    if (!v) return v.status();
    counter = static_cast<int>(*v);
    return Status::Ok();
  }
};

TEST(LegionObjectTest, StartsInactive) {
  SimKernel kernel;
  LegionObject object(&kernel, ObjLoid(), ClassLoid());
  EXPECT_EQ(object.state(), ObjectState::kInactive);
  EXPECT_FALSE(object.active());
  EXPECT_EQ(object.class_loid(), ClassLoid());
}

TEST(LegionObjectTest, ActivateDeactivateLifecycle) {
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  EXPECT_TRUE(object.Activate(HostLoid(), VaultLoid()).ok());
  EXPECT_TRUE(object.active());
  EXPECT_EQ(object.host(), HostLoid());
  EXPECT_EQ(object.vault(), VaultLoid());
  EXPECT_EQ(object.activations, 1);
  // Double activation fails.
  EXPECT_FALSE(object.Activate(HostLoid(), VaultLoid()).ok());
  EXPECT_TRUE(object.Deactivate().ok());
  EXPECT_EQ(object.state(), ObjectState::kInactive);
  EXPECT_EQ(object.deactivations, 1);
  // Double deactivation fails.
  EXPECT_FALSE(object.Deactivate().ok());
}

TEST(LegionObjectTest, DeadObjectsStayDead) {
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  ASSERT_TRUE(object.Activate(HostLoid(), VaultLoid()).ok());
  object.MarkDead();
  EXPECT_EQ(object.state(), ObjectState::kDead);
  EXPECT_EQ(object.deactivations, 1);  // OnDeactivate ran
  EXPECT_FALSE(object.Activate(HostLoid(), VaultLoid()).ok());
}

TEST(LegionObjectTest, OprRoundTripsAttributesAndBody) {
  SimKernel kernel;
  CounterObject original(&kernel, ObjLoid());
  original.mutable_attributes().Set("colour", "blue");
  original.counter = 123;
  Opr opr = original.SaveState();
  EXPECT_EQ(opr.object, ObjLoid());
  EXPECT_EQ(opr.class_loid, ClassLoid());

  CounterObject restored(&kernel, ObjLoid());
  ASSERT_TRUE(restored.RestoreState(opr).ok());
  EXPECT_EQ(restored.counter, 123);
  EXPECT_EQ(restored.attributes().Get("colour")->as_string(), "blue");
}

TEST(LegionObjectTest, OprSerializedFormRoundTrips) {
  SimKernel kernel;
  CounterObject original(&kernel, ObjLoid());
  original.counter = 7;
  original.mutable_attributes().Set("x", 1);
  const Opr opr = original.SaveState();
  auto bytes = opr.Serialize();
  auto decoded = Opr::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->object, opr.object);
  EXPECT_EQ(decoded->class_loid, opr.class_loid);
  EXPECT_EQ(decoded->body, opr.body);
  EXPECT_EQ(decoded->attributes.Get("x")->as_int(), 1);
}

TEST(LegionObjectTest, RestoreRejectsWrongIdentity) {
  SimKernel kernel;
  CounterObject a(&kernel, ObjLoid());
  Opr opr = a.SaveState();
  CounterObject b(&kernel, Loid(LoidSpace::kObject, 0, 51));
  EXPECT_FALSE(b.RestoreState(opr).ok());
}

TEST(LegionObjectTest, RestoreRejectsWhileActive) {
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  Opr opr = object.SaveState();
  ASSERT_TRUE(object.Activate(HostLoid(), VaultLoid()).ok());
  EXPECT_FALSE(object.RestoreState(opr).ok());
}

TEST(LegionObjectTest, MigrationShapedLifecycle) {
  // Shutdown -> move passive state -> reactivate elsewhere (paper 2.1).
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  ASSERT_TRUE(object.Activate(HostLoid(), VaultLoid()).ok());
  object.counter = 55;
  ASSERT_TRUE(object.Deactivate().ok());
  const Opr opr = object.SaveState();

  // Simulate arrival at a new (host, vault).
  ASSERT_TRUE(object.RestoreState(opr).ok());
  const Loid new_host(LoidSpace::kHost, 1, 9);
  const Loid new_vault(LoidSpace::kVault, 1, 8);
  ASSERT_TRUE(object.Activate(new_host, new_vault).ok());
  EXPECT_EQ(object.counter, 55);
  EXPECT_EQ(object.host(), new_host);
  EXPECT_EQ(object.vault(), new_vault);
}

TEST(LegionObjectTest, EvaluateTriggersUsesOwnAttributes) {
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  TriggerSpec spec;
  spec.event_name = "warm";
  spec.guard = [](const AttributeDatabase& db) {
    const AttrValue* t = db.Get("temp");
    return t != nullptr && t->as_int() > 50;
  };
  object.events().RegisterTrigger(std::move(spec));
  int fired = 0;
  object.events().RegisterOutcall("warm", [&](const RgeEvent&) { ++fired; });
  object.mutable_attributes().Set("temp", 40);
  EXPECT_EQ(object.EvaluateTriggers(), 0u);
  object.mutable_attributes().Set("temp", 60);
  EXPECT_EQ(object.EvaluateTriggers(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(OprTest, SizeGrowsWithContent) {
  SimKernel kernel;
  CounterObject object(&kernel, ObjLoid());
  const std::size_t empty_size = object.SaveState().SizeBytes();
  for (int i = 0; i < 50; ++i) {
    object.mutable_attributes().Set("attr" + std::to_string(i),
                                    std::string(100, 'x'));
  }
  EXPECT_GT(object.SaveState().SizeBytes(), empty_size + 4000);
}

}  // namespace
}  // namespace legion
