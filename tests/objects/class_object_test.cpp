#include "objects/class_object.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

TEST(ClassObjectTest, ExposesImplementations) {
  TestWorld world;
  auto* klass = world.MakeClass("app");
  Await<std::vector<Implementation>> impls;
  klass->GetImplementations(impls.Sink());
  ASSERT_TRUE(impls.Ready());  // local call completes synchronously
  ASSERT_EQ(impls.Get()->size(), 1u);
  EXPECT_EQ((*impls.Get())[0].arch, "x86");
  EXPECT_EQ((*impls.Get())[0].os_name, "Linux");
}

TEST(ClassObjectTest, ReportsResourceRequirements) {
  TestWorld world;
  auto* klass = world.MakeClass("app", /*memory_mb=*/128, /*cpu=*/0.5);
  Await<AttributeDatabase> reqs;
  klass->GetResourceRequirements(reqs.Sink());
  ASSERT_TRUE(reqs.Ready());
  EXPECT_EQ(reqs.Get()->Get("memory_mb")->as_int(), 128);
  EXPECT_DOUBLE_EQ(reqs.Get()->Get("cpu_fraction")->as_double(), 0.5);
}

TEST(ClassObjectTest, DefaultPlacementRoundRobins) {
  // The "quick (and almost certainly non-optimal)" default decision.
  TestWorld world;
  auto* klass = world.MakeClass("app");
  std::vector<Loid> hosts_used;
  for (int i = 0; i < 3; ++i) {
    Await<Loid> instance;
    klass->CreateInstance(std::nullopt, instance.Sink());
    world.Run();
    ASSERT_TRUE(instance.Ready());
    ASSERT_TRUE(instance.Get().ok());
    auto* object = dynamic_cast<LegionObject*>(
        world.kernel.FindActor(*instance.Get()));
    ASSERT_NE(object, nullptr);
    hosts_used.push_back(object->host());
  }
  // Three hosts, three placements: all distinct (round robin).
  EXPECT_NE(hosts_used[0], hosts_used[1]);
  EXPECT_NE(hosts_used[1], hosts_used[2]);
  EXPECT_NE(hosts_used[0], hosts_used[2]);
  EXPECT_EQ(klass->instances().size(), 3u);
}

TEST(ClassObjectTest, DefaultPlacementFailsWithoutKnownResources) {
  TestWorld world;
  auto* klass = world.kernel.AddActor<ClassObject>(
      Loid(LoidSpace::kClass, 0, 200), "orphan",
      std::vector<Implementation>{});
  Await<Loid> instance;
  klass->CreateInstance(std::nullopt, instance.Sink());
  world.Run();
  ASSERT_TRUE(instance.Ready());
  EXPECT_EQ(instance.Get().code(), ErrorCode::kNoResources);
}

TEST(ClassObjectTest, DefaultPlacementSkipsFullHosts) {
  TestWorld world;
  auto* klass = world.MakeClass("fat", /*memory_mb=*/900);
  // First placement fills host0's 1024 MB; second must move on.
  Await<Loid> first, second;
  klass->CreateInstance(std::nullopt, first.Sink());
  world.Run();
  klass->CreateInstance(std::nullopt, second.Sink());
  world.Run();
  ASSERT_TRUE(first.Get().ok());
  ASSERT_TRUE(second.Get().ok());
  auto* a = dynamic_cast<LegionObject*>(world.kernel.FindActor(*first.Get()));
  auto* b = dynamic_cast<LegionObject*>(world.kernel.FindActor(*second.Get()));
  EXPECT_NE(a->host(), b->host());
}

TEST(ClassObjectTest, DirectedPlacementUsesSuggestion) {
  TestWorld world;
  auto* klass = world.MakeClass("app");
  PlacementSuggestion suggestion;
  suggestion.host = world.hosts[2]->loid();
  suggestion.vault = world.vaults[2]->loid();
  Await<Loid> instance;
  klass->CreateInstance(suggestion, instance.Sink());
  world.Run();
  ASSERT_TRUE(instance.Get().ok());
  auto* object =
      dynamic_cast<LegionObject*>(world.kernel.FindActor(*instance.Get()));
  EXPECT_EQ(object->host(), world.hosts[2]->loid());
  EXPECT_EQ(object->vault(), world.vaults[2]->loid());
}

TEST(ClassObjectTest, ValidatorIsFinalAuthority) {
  // "The Class object is still responsible for checking the placement
  // for validity and conformance to local policy."
  TestWorld world;
  auto* klass = world.MakeClass("picky");
  const Loid banned = world.hosts[0]->loid();
  klass->SetPlacementValidator(
      [banned](const PlacementSuggestion& suggestion) {
        if (suggestion.host == banned) {
          return Status::Error(ErrorCode::kRefused, "not on that host");
        }
        return Status::Ok();
      });
  PlacementSuggestion suggestion;
  suggestion.host = banned;
  suggestion.vault = world.vaults[0]->loid();
  Await<Loid> refused;
  klass->CreateInstance(suggestion, refused.Sink());
  world.Run();
  EXPECT_EQ(refused.Get().code(), ErrorCode::kRefused);

  suggestion.host = world.hosts[1]->loid();
  suggestion.vault = world.vaults[1]->loid();
  Await<Loid> accepted;
  klass->CreateInstance(suggestion, accepted.Sink());
  world.Run();
  EXPECT_TRUE(accepted.Get().ok());
}

TEST(ClassObjectTest, BatchedCreateStartsSeveralInstances) {
  // Table 1: "The StartObject function can create one or more objects".
  TestWorld world;
  auto* klass = world.MakeClass("par", /*memory_mb=*/16, /*cpu=*/0.25);
  PlacementSuggestion suggestion;
  suggestion.host = world.hosts[0]->loid();
  suggestion.vault = world.vaults[0]->loid();
  Await<std::vector<Loid>> instances;
  klass->CreateInstancesOn(suggestion, 4, instances.Sink());
  world.Run();
  ASSERT_TRUE(instances.Get().ok());
  EXPECT_EQ(instances.Get()->size(), 4u);
  EXPECT_EQ(world.hosts[0]->running_count(), 4u);
  EXPECT_EQ(klass->instances().size(), 4u);
}

TEST(ClassObjectTest, ForgetInstanceRemovesFromRegistry) {
  TestWorld world;
  auto* klass = world.MakeClass("app");
  Await<Loid> instance;
  klass->CreateInstance(std::nullopt, instance.Sink());
  world.Run();
  ASSERT_TRUE(instance.Get().ok());
  EXPECT_EQ(klass->instances().size(), 1u);
  klass->ForgetInstance(*instance.Get());
  EXPECT_TRUE(klass->instances().empty());
}

TEST(ClassObjectTest, CreateInstanceOnDeadHostFails) {
  TestWorld world;
  auto* klass = world.MakeClass("app");
  PlacementSuggestion suggestion;
  suggestion.host = Loid(LoidSpace::kHost, 0, 9999);  // no such host
  suggestion.vault = world.vaults[0]->loid();
  Await<Loid> instance;
  klass->CreateInstance(suggestion, instance.Sink());
  world.Run();
  ASSERT_TRUE(instance.Ready());
  EXPECT_FALSE(instance.Get().ok());
}

}  // namespace
}  // namespace legion
