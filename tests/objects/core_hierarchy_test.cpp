// The core object hierarchy (paper figure 1).
#include "objects/core_hierarchy.h"

#include <gtest/gtest.h>

#include "workload/metacomputer.h"

namespace legion {
namespace {

TEST(CoreHierarchyTest, EnsureCreatesTheThreeCoreClasses) {
  SimKernel kernel;
  CoreHierarchy hierarchy = EnsureCoreHierarchy(&kernel, 0);
  ASSERT_NE(hierarchy.legion_class, nullptr);
  ASSERT_NE(hierarchy.host_class, nullptr);
  ASSERT_NE(hierarchy.vault_class, nullptr);
  EXPECT_EQ(hierarchy.legion_class->name(), "LegionClass");
  EXPECT_EQ(hierarchy.host_class->name(), "HostClass");
  EXPECT_EQ(hierarchy.vault_class->name(), "VaultClass");
  EXPECT_EQ(hierarchy.legion_class->loid(), LegionClassLoid(0));
  EXPECT_EQ(hierarchy.host_class->loid(), HostClassLoid(0));
  EXPECT_EQ(hierarchy.vault_class->loid(), VaultClassLoid(0));
}

TEST(CoreHierarchyTest, EnsureIsIdempotent) {
  SimKernel kernel;
  CoreHierarchy first = EnsureCoreHierarchy(&kernel, 0);
  CoreHierarchy second = EnsureCoreHierarchy(&kernel, 0);
  EXPECT_EQ(first.legion_class, second.legion_class);
  EXPECT_EQ(first.host_class, second.host_class);
  EXPECT_EQ(first.vault_class, second.vault_class);
}

TEST(CoreHierarchyTest, HostsDescendFromHostClassThenLegionClass) {
  SimKernel kernel;
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 3;
  Metacomputer metacomputer(&kernel, config);
  for (auto* host : metacomputer.hosts()) {
    auto chain = ClassChainOf(&kernel, host->class_loid());
    ASSERT_GE(chain.size(), 2u) << host->spec().name;
    EXPECT_EQ(chain.front(), HostClassLoid(host->spec().domain));
    EXPECT_EQ(chain.back(), LegionClassLoid(host->spec().domain));
  }
}

TEST(CoreHierarchyTest, VaultsDescendFromVaultClass) {
  SimKernel kernel;
  Metacomputer metacomputer(&kernel, MetacomputerConfig{});
  for (auto* vault : metacomputer.vaults()) {
    auto chain = ClassChainOf(&kernel, vault->class_loid());
    ASSERT_GE(chain.size(), 2u);
    EXPECT_EQ(chain.front(), VaultClassLoid(vault->spec().domain));
    EXPECT_EQ(chain.back(), LegionClassLoid(vault->spec().domain));
  }
}

TEST(CoreHierarchyTest, UserClassesDescendDirectlyFromLegionClass) {
  // MyObjClass sits directly under LegionClass in figure 1.
  SimKernel kernel;
  Metacomputer metacomputer(&kernel, MetacomputerConfig{});
  ClassObject* klass = metacomputer.MakeUniversalClass("MyObjClass");
  auto chain = ClassChainOf(&kernel, klass->class_loid());
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back(), LegionClassLoid(0));
}

TEST(CoreHierarchyTest, LegionClassRootsItself) {
  SimKernel kernel;
  EnsureCoreHierarchy(&kernel, 0);
  auto chain = ClassChainOf(&kernel, LegionClassLoid(0));
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.front(), LegionClassLoid(0));
}

TEST(CoreHierarchyTest, ChainWalkerBoundsDepth) {
  SimKernel kernel;
  // A dangling class loid (no actor) terminates immediately after the
  // first hop.
  auto chain = ClassChainOf(&kernel, Loid(LoidSpace::kClass, 0, 777));
  EXPECT_EQ(chain.size(), 1u);
}

}  // namespace
}  // namespace legion
