#include "objects/rge.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

Loid Owner() { return Loid(LoidSpace::kHost, 0, 1); }

TriggerSpec LoadTrigger(double threshold, bool edge = true,
                        bool one_shot = false) {
  TriggerSpec spec;
  spec.event_name = "high_load";
  spec.guard = [threshold](const AttributeDatabase& db) {
    const AttrValue* load = db.Get("load");
    return load != nullptr && load->as_double() > threshold;
  };
  spec.edge_sensitive = edge;
  spec.one_shot = one_shot;
  return spec;
}

TEST(RgeTest, TriggerFiresWhenGuardTrue) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5));
  int fired = 0;
  manager.RegisterOutcall("high_load",
                          [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.9);
  EXPECT_EQ(manager.Evaluate(db, SimTime(1)), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(RgeTest, TriggerSilentWhenGuardFalse) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5));
  int fired = 0;
  manager.RegisterOutcall("high_load", [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.1);
  EXPECT_EQ(manager.Evaluate(db, SimTime(1)), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(RgeTest, EdgeSensitiveFiresOncePerTransition) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5, /*edge=*/true));
  int fired = 0;
  manager.RegisterOutcall("high_load", [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(1));
  manager.Evaluate(db, SimTime(2));  // still high: no re-fire
  manager.Evaluate(db, SimTime(3));
  EXPECT_EQ(fired, 1);
  db.Set("load", 0.1);
  manager.Evaluate(db, SimTime(4));  // re-arm
  db.Set("load", 0.95);
  manager.Evaluate(db, SimTime(5));  // fires again
  EXPECT_EQ(fired, 2);
}

TEST(RgeTest, LevelSensitiveFiresEveryEvaluation) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5, /*edge=*/false));
  int fired = 0;
  manager.RegisterOutcall("high_load", [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.9);
  for (int i = 0; i < 3; ++i) manager.Evaluate(db, SimTime(i));
  EXPECT_EQ(fired, 3);
}

TEST(RgeTest, OneShotRemovesItself) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5, true, /*one_shot=*/true));
  int fired = 0;
  manager.RegisterOutcall("high_load", [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(1));
  EXPECT_EQ(manager.trigger_count(), 0u);
  db.Set("load", 0.1);
  manager.Evaluate(db, SimTime(2));
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(3));
  EXPECT_EQ(fired, 1);
}

TEST(RgeTest, EventCarriesOwnerTimeAndPayload) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5));
  RgeEvent received;
  manager.RegisterOutcall("high_load",
                          [&](const RgeEvent& e) { received = e; });
  AttributeDatabase db;
  db.Set("load", 0.8);
  db.Set("name", "hostX");
  manager.Evaluate(db, SimTime(77));
  EXPECT_EQ(received.name, "high_load");
  EXPECT_EQ(received.source, Owner());
  EXPECT_EQ(received.when, SimTime(77));
  EXPECT_EQ(received.payload.Get("name")->as_string(), "hostX");
}

TEST(RgeTest, EmptyOutcallNameSubscribesToAll) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5));
  TriggerSpec other;
  other.event_name = "other_event";
  other.guard = [](const AttributeDatabase&) { return true; };
  manager.RegisterTrigger(std::move(other));
  int fired = 0;
  manager.RegisterOutcall("", [&](const RgeEvent&) { ++fired; });
  AttributeDatabase db;
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(1));
  EXPECT_EQ(fired, 2);
}

TEST(RgeTest, RemoveTriggerAndOutcall) {
  EventManager manager(Owner());
  TriggerId trigger = manager.RegisterTrigger(LoadTrigger(0.5));
  int fired = 0;
  OutcallId outcall =
      manager.RegisterOutcall("high_load", [&](const RgeEvent&) { ++fired; });
  EXPECT_TRUE(manager.RemoveTrigger(trigger));
  EXPECT_FALSE(manager.RemoveTrigger(trigger));
  EXPECT_TRUE(manager.RemoveOutcall(outcall));
  EXPECT_FALSE(manager.RemoveOutcall(outcall));
  AttributeDatabase db;
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(1));
  EXPECT_EQ(fired, 0);
}

TEST(RgeTest, OutcallMayUnsubscribeDuringDispatch) {
  EventManager manager(Owner());
  manager.RegisterTrigger(LoadTrigger(0.5, /*edge=*/false));
  OutcallId id = 0;
  int fired = 0;
  id = manager.RegisterOutcall("high_load", [&](const RgeEvent&) {
    ++fired;
    manager.RemoveOutcall(id);
  });
  AttributeDatabase db;
  db.Set("load", 0.9);
  manager.Evaluate(db, SimTime(1));
  manager.Evaluate(db, SimTime(2));
  EXPECT_EQ(fired, 1);
}

TEST(RgeTest, MultipleTriggersCountRaised) {
  EventManager manager(Owner());
  for (double t : {0.1, 0.2, 0.3}) manager.RegisterTrigger(LoadTrigger(t));
  AttributeDatabase db;
  db.Set("load", 0.25);
  EXPECT_EQ(manager.Evaluate(db, SimTime(1)), 2u);  // 0.1 and 0.2 fire
  EXPECT_EQ(manager.events_raised(), 2u);
}

}  // namespace
}  // namespace legion
