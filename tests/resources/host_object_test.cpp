// Host Object resource-management interface (paper Table 1).
#include "resources/host_object.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class HostObjectTest : public ::testing::Test {
 protected:
  HostObjectTest() : world_() {
    host_ = world_.hosts[0];
    vault_ = world_.vaults[0];
    klass_ = world_.MakeClass("app", /*memory_mb=*/64, /*cpu=*/1.0);
  }

  ReservationRequest Request(Duration duration = Duration::Hours(1)) {
    ReservationRequest request;
    request.vault = vault_->loid();
    request.start = world_.kernel.Now();
    request.duration = duration;
    request.type = ReservationType::OneShotTimesharing();
    request.requester = Loid(LoidSpace::kService, 0, 77);
    request.requester_domain = 0;
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    return request;
  }

  StartObjectRequest StartRequest(std::size_t count = 1,
                                  ReservationToken token = {}) {
    StartObjectRequest request;
    request.class_loid = klass_->loid();
    for (std::size_t i = 0; i < count; ++i) {
      request.instances.push_back(
          world_.kernel.minter().Mint(LoidSpace::kObject, 0));
    }
    request.token = token;
    request.vault = vault_->loid();
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    request.factory = klass_->factory();
    return request;
  }

  TestWorld world_;
  HostObject* host_;
  VaultObject* vault_;
  ClassObject* klass_;
};

// ---- Reservation management ----------------------------------------------------

TEST_F(HostObjectTest, MakeReservationGrantsVerifiableToken) {
  Await<ReservationToken> token;
  host_->MakeReservation(Request(), token.Sink());
  ASSERT_TRUE(token.Ready());
  ASSERT_TRUE(token.Get().ok());
  EXPECT_EQ(token.Get()->host, host_->loid());
  EXPECT_EQ(token.Get()->vault, vault_->loid());
  Await<bool> check;
  host_->CheckReservation(*token.Get(), check.Sink());
  EXPECT_TRUE(*check.Get());
}

TEST_F(HostObjectTest, CancelReservationReleases) {
  Await<ReservationToken> token;
  host_->MakeReservation(Request(), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  Await<bool> cancel;
  host_->CancelReservation(*token.Get(), cancel.Sink());
  EXPECT_TRUE(*cancel.Get());
  Await<bool> check;
  host_->CheckReservation(*token.Get(), check.Sink());
  EXPECT_FALSE(*check.Get());
}

TEST_F(HostObjectTest, ForeignTokenFailsCheckAndCancel) {
  // Tokens issued by another host do not verify here.
  ReservationRequest request = Request();
  request.vault = world_.vaults[1]->loid();  // host1's vault
  Await<ReservationToken> token;
  world_.hosts[1]->MakeReservation(request, token.Sink());
  ASSERT_TRUE(token.Get().ok());
  Await<bool> check;
  host_->CheckReservation(*token.Get(), check.Sink());
  EXPECT_FALSE(*check.Get());
  Await<bool> cancel;
  host_->CancelReservation(*token.Get(), cancel.Sink());
  EXPECT_FALSE(*cancel.Get());
}

TEST_F(HostObjectTest, ReservationRequiresNamedVault) {
  ReservationRequest request = Request();
  request.vault = Loid();
  Await<ReservationToken> token;
  host_->MakeReservation(request, token.Sink());
  EXPECT_EQ(token.Get().code(), ErrorCode::kInvalidArgument);
}

TEST_F(HostObjectTest, ReservationProbesVaultOutsideItsList) {
  // A vault not on the host's compatibility list is probed live
  // (vault_OK); a public same-kind vault passes and the grant proceeds.
  ReservationRequest request = Request();
  request.vault = world_.vaults[1]->loid();  // not in host0's list
  Await<ReservationToken> token;
  host_->MakeReservation(request, token.Sink());
  world_.Run();  // the probe is an RPC
  ASSERT_TRUE(token.Ready());
  EXPECT_TRUE(token.Get().ok());
}

TEST_F(HostObjectTest, ReservationRefusesUnreachableVault) {
  // "the Host is responsible for ensuring that the vault is reachable":
  // a private vault in a foreign domain fails the probe.
  VaultSpec foreign_spec;
  foreign_spec.name = "foreign";
  foreign_spec.domain = 5;
  foreign_spec.public_access = false;
  auto* foreign = world_.kernel.AddActor<VaultObject>(
      world_.kernel.minter().Mint(LoidSpace::kVault, 5), foreign_spec);
  ReservationRequest request = Request();
  request.vault = foreign->loid();
  Await<ReservationToken> token;
  host_->MakeReservation(request, token.Sink());
  world_.Run();
  ASSERT_TRUE(token.Ready());
  EXPECT_EQ(token.Get().code(), ErrorCode::kRefused);
}

TEST_F(HostObjectTest, ReservationRefusesArchIncompatibleVault) {
  VaultSpec sparc_spec;
  sparc_spec.name = "sparc-only";
  sparc_spec.domain = 0;
  sparc_spec.compatible_arches = {"sparc"};
  auto* sparc_vault = world_.kernel.AddActor<VaultObject>(
      world_.kernel.minter().Mint(LoidSpace::kVault, 0), sparc_spec);
  ReservationRequest request = Request();
  request.vault = sparc_vault->loid();  // host is x86
  Await<ReservationToken> token;
  host_->MakeReservation(request, token.Sink());
  world_.Run();
  ASSERT_TRUE(token.Ready());
  EXPECT_EQ(token.Get().code(), ErrorCode::kRefused);
}

TEST_F(HostObjectTest, ReservationRefusesDeadVault) {
  ReservationRequest request = Request();
  request.vault = Loid(LoidSpace::kVault, 0, 31337);  // nothing there
  Await<ReservationToken> token;
  host_->MakeReservation(request, token.Sink());
  world_.Run();
  ASSERT_TRUE(token.Ready());
  EXPECT_EQ(token.Get().code(), ErrorCode::kRefused);
}

TEST_F(HostObjectTest, LocalPolicyHasFinalAuthority) {
  host_->SetPolicy(std::make_unique<DomainRefusalPolicy>(
      std::vector<std::uint32_t>{0}));
  Await<ReservationToken> token;
  host_->MakeReservation(Request(), token.Sink());
  EXPECT_EQ(token.Get().code(), ErrorCode::kRefused);
}

TEST_F(HostObjectTest, CapacityExhaustionRefusesReservations) {
  // 4 CPUs x 2.0 oversubscription = 8 concurrent units.
  for (int i = 0; i < 8; ++i) {
    Await<ReservationToken> token;
    host_->MakeReservation(Request(), token.Sink());
    ASSERT_TRUE(token.Get().ok()) << i;
  }
  Await<ReservationToken> overflow;
  host_->MakeReservation(Request(), overflow.Sink());
  EXPECT_EQ(overflow.Get().code(), ErrorCode::kNoResources);
}

// ---- Batched reservations ---------------------------------------------------

TEST_F(HostObjectTest, BatchGrantsAllSlots) {
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  batch.batch_id = 1;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.slots.push_back(BatchSlotRequest{i, Request()});
  }
  Await<ReservationBatchReply> reply;
  host_->MakeReservationBatch(batch, reply.Sink());
  ASSERT_TRUE(reply.Ready());
  ASSERT_TRUE(reply.Get().ok());
  ASSERT_EQ(reply.Get()->outcomes.size(), 4u);
  for (const BatchSlotOutcome& outcome : reply.Get()->outcomes) {
    EXPECT_TRUE(outcome.status.ok());
    EXPECT_EQ(outcome.token.host, host_->loid());
    EXPECT_TRUE(host_->mutable_reservations().Check(outcome.token,
                                                    world_.kernel.Now()));
  }
  EXPECT_EQ(host_->reservations().live_count(), 4u);
}

TEST_F(HostObjectTest, BatchReportsPerSlotFailures) {
  // Slot 1 names no vault, slot 3 overflows capacity (8 cpu units, four
  // 1.0-cpu grants before it plus its own demand of 6).  The good slots
  // still land: per-slot failure, not all-or-nothing.
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  batch.batch_id = 2;
  ReservationRequest bad_vault = Request();
  bad_vault.vault = Loid();
  ReservationRequest hog = Request();
  hog.cpu_fraction = 6.0;
  batch.slots.push_back(BatchSlotRequest{0, Request()});
  batch.slots.push_back(BatchSlotRequest{1, bad_vault});
  batch.slots.push_back(BatchSlotRequest{2, Request()});
  batch.slots.push_back(BatchSlotRequest{3, hog});
  batch.slots.push_back(BatchSlotRequest{4, hog});
  Await<ReservationBatchReply> reply;
  host_->MakeReservationBatch(batch, reply.Sink());
  ASSERT_TRUE(reply.Ready());
  ASSERT_TRUE(reply.Get().ok());
  const auto& outcomes = reply.Get()->outcomes;
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[1].status.code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(outcomes[2].status.ok());
  EXPECT_TRUE(outcomes[3].status.ok());  // 1+1+6 = 8 units: fits exactly
  EXPECT_EQ(outcomes[4].status.code(), ErrorCode::kNoResources);
  EXPECT_EQ(host_->reservations().live_count(), 3u);
}

TEST_F(HostObjectTest, BatchRetransmissionReplaysCachedReply) {
  // At-most-once: resending the same batch_id returns the cached reply
  // -- identical tokens -- without admitting anything twice.
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  batch.batch_id = 7;
  for (std::size_t i = 0; i < 3; ++i) {
    batch.slots.push_back(BatchSlotRequest{i, Request()});
  }
  Await<ReservationBatchReply> first;
  host_->MakeReservationBatch(batch, first.Sink());
  ASSERT_TRUE(first.Get().ok());
  const std::size_t admitted = host_->reservations().admitted();
  const std::size_t live = host_->reservations().live_count();

  Await<ReservationBatchReply> second;
  host_->MakeReservationBatch(batch, second.Sink());
  ASSERT_TRUE(second.Get().ok());
  ASSERT_EQ(second.Get()->outcomes.size(), first.Get()->outcomes.size());
  for (std::size_t i = 0; i < first.Get()->outcomes.size(); ++i) {
    EXPECT_EQ(second.Get()->outcomes[i].token.ToString(),
              first.Get()->outcomes[i].token.ToString());
  }
  EXPECT_EQ(host_->reservations().admitted(), admitted);
  EXPECT_EQ(host_->reservations().live_count(), live);
}

TEST_F(HostObjectTest, BatchReplayCacheEvictsByAgeAndCountsMisses) {
  // Within the retention horizon a flagged retransmission replays from
  // the cache; past it the entry is evicted, the host re-admits blind,
  // and the miss is counted so the failure mode is observable.
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  batch.batch_id = 9;
  batch.slots.push_back(BatchSlotRequest{0, Request()});
  Await<ReservationBatchReply> first;
  host_->MakeReservationBatch(batch, first.Sink());
  ASSERT_TRUE(first.Get().ok());
  EXPECT_EQ(host_->reservations().admitted(), 1u);

  batch.retransmit = true;
  Await<ReservationBatchReply> replayed;
  host_->MakeReservationBatch(batch, replayed.Sink());
  ASSERT_TRUE(replayed.Get().ok());
  EXPECT_EQ(host_->batch_replay_hits(), 1u);
  EXPECT_EQ(host_->batch_replay_misses(), 0u);
  EXPECT_EQ(host_->reservations().admitted(), 1u);

  // Age the entry past the retention horizon: the cached reply is gone,
  // so the retransmission re-admits (a second serial for the same slot)
  // and the miss counter records that it happened.
  world_.kernel.RunFor(host_->spec().batch_replay_retention +
                       Duration::Seconds(1));
  Await<ReservationBatchReply> after;
  host_->MakeReservationBatch(batch, after.Sink());
  ASSERT_TRUE(after.Get().ok());
  EXPECT_EQ(host_->batch_replay_hits(), 1u);
  EXPECT_EQ(host_->batch_replay_misses(), 1u);
  EXPECT_EQ(host_->reservations().admitted(), 2u);
}

TEST_F(HostObjectTest, BatchHonorsLocalPolicyPerSlot) {
  host_->SetPolicy(std::make_unique<DomainRefusalPolicy>(
      std::vector<std::uint32_t>{3}));
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  ReservationRequest foreign = Request();
  foreign.requester_domain = 3;
  batch.slots.push_back(BatchSlotRequest{0, Request()});
  batch.slots.push_back(BatchSlotRequest{1, foreign});
  Await<ReservationBatchReply> reply;
  host_->MakeReservationBatch(batch, reply.Sink());
  ASSERT_TRUE(reply.Get().ok());
  EXPECT_TRUE(reply.Get()->outcomes[0].status.ok());
  EXPECT_EQ(reply.Get()->outcomes[1].status.code(), ErrorCode::kRefused);
}

TEST_F(HostObjectTest, BatchProbesUnlistedVaultOnce) {
  // Two slots naming the same unlisted vault share one vault_OK probe,
  // and the batch reply waits for it.
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 77);
  ReservationRequest other = Request();
  other.vault = world_.vaults[1]->loid();  // not in host0's list
  batch.slots.push_back(BatchSlotRequest{0, other});
  batch.slots.push_back(BatchSlotRequest{1, other});
  Await<ReservationBatchReply> reply;
  host_->MakeReservationBatch(batch, reply.Sink());
  EXPECT_FALSE(reply.Ready());  // probe in flight
  world_.Run();
  ASSERT_TRUE(reply.Ready());
  ASSERT_TRUE(reply.Get().ok());
  EXPECT_TRUE(reply.Get()->outcomes[0].status.ok());
  EXPECT_TRUE(reply.Get()->outcomes[1].status.ok());
}

// ---- Process management -----------------------------------------------------------

TEST_F(HostObjectTest, StartObjectWithReservation) {
  Await<ReservationToken> token;
  host_->MakeReservation(Request(), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1, *token.Get()), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  ASSERT_EQ(started.Get()->size(), 1u);
  EXPECT_EQ(host_->running_count(), 1u);
  auto* object = dynamic_cast<LegionObject*>(
      world_.kernel.FindActor(started.Get()->front()));
  ASSERT_NE(object, nullptr);
  EXPECT_TRUE(object->active());
  EXPECT_EQ(object->host(), host_->loid());
}

TEST_F(HostObjectTest, StartObjectRejectsForgedToken) {
  ReservationToken forged;
  forged.host = host_->loid();
  forged.vault = vault_->loid();
  forged.serial = 12345;
  forged.start = world_.kernel.Now();
  forged.duration = Duration::Hours(1);
  forged.mac = 0xBAD;
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1, forged), started.Sink());
  EXPECT_EQ(started.Get().code(), ErrorCode::kInvalidToken);
  EXPECT_EQ(host_->starts_refused(), 1u);
}

TEST_F(HostObjectTest, StartObjectRejectsVaultMismatch) {
  Await<ReservationToken> token;
  host_->MakeReservation(Request(), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  StartObjectRequest request = StartRequest(1, *token.Get());
  request.vault = world_.vaults[1]->loid();
  Await<std::vector<Loid>> started;
  host_->StartObject(request, started.Sink());
  EXPECT_EQ(started.Get().code(), ErrorCode::kInvalidArgument);
}

TEST_F(HostObjectTest, StartObjectWithoutTokenUsesAdmission) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1), started.Sink());
  EXPECT_TRUE(started.Get().ok());
  // Fill the machine: 8 cpu units total, 1 used.
  for (int i = 0; i < 7; ++i) {
    Await<std::vector<Loid>> more;
    host_->StartObject(StartRequest(1), more.Sink());
    ASSERT_TRUE(more.Get().ok()) << i;
  }
  Await<std::vector<Loid>> overflow;
  host_->StartObject(StartRequest(1), overflow.Sink());
  EXPECT_EQ(overflow.Get().code(), ErrorCode::kNoResources);
}

TEST_F(HostObjectTest, BatchedStartCreatesSeveral) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(3), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  EXPECT_EQ(started.Get()->size(), 3u);
  EXPECT_EQ(host_->running_count(), 3u);
  EXPECT_EQ(host_->objects_started(), 3u);
}

TEST_F(HostObjectTest, EmptyStartRequestRejected) {
  StartObjectRequest request = StartRequest(1);
  request.instances.clear();
  Await<std::vector<Loid>> started;
  host_->StartObject(request, started.Sink());
  EXPECT_EQ(started.Get().code(), ErrorCode::kInvalidArgument);
}

TEST_F(HostObjectTest, FutureReservationDefersActivation) {
  ReservationRequest reservation = Request();
  reservation.start = world_.kernel.Now() + Duration::Minutes(10);
  Await<ReservationToken> token;
  host_->MakeReservation(reservation, token.Sink());
  ASSERT_TRUE(token.Get().ok());
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1, *token.Get()), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  const Loid instance = started.Get()->front();
  // Created but not yet active.
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(instance));
  ASSERT_NE(object, nullptr);
  EXPECT_FALSE(object->active());
  EXPECT_EQ(host_->running_count(), 0u);
  // The window opens.
  world_.kernel.RunFor(Duration::Minutes(11));
  EXPECT_TRUE(object->active());
  EXPECT_EQ(host_->running_count(), 1u);
}

TEST_F(HostObjectTest, KillObjectReleasesEverything) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  const Loid instance = started.Get()->front();
  Await<bool> killed;
  host_->KillObject(instance, killed.Sink());
  EXPECT_TRUE(*killed.Get());
  EXPECT_EQ(host_->running_count(), 0u);
  EXPECT_EQ(world_.kernel.FindActor(instance), nullptr);
  // Killing again fails.
  Await<bool> again;
  host_->KillObject(instance, again.Sink());
  EXPECT_FALSE(*again.Get());
}

TEST_F(HostObjectTest, DeactivateStoresOprInVault) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  const Loid instance = started.Get()->front();
  EXPECT_EQ(vault_->stored_count(), 0u);
  Await<bool> deactivated;
  host_->DeactivateObject(instance, deactivated.Sink());
  world_.Run();
  ASSERT_TRUE(deactivated.Ready());
  EXPECT_TRUE(*deactivated.Get());
  EXPECT_EQ(host_->running_count(), 0u);
  EXPECT_EQ(vault_->stored_count(), 1u);
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(instance));
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(object->state(), ObjectState::kInactive);
}

TEST_F(HostObjectTest, ReactivateRestoresFromVault) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1), started.Sink());
  const Loid instance = started.Get()->front();
  Await<bool> deactivated;
  host_->DeactivateObject(instance, deactivated.Sink());
  world_.Run();
  ASSERT_TRUE(*deactivated.Get());
  // Reactivate on a different host (which can reach this vault? It
  // fetches by LOID regardless -- reachability was checked at
  // reservation time).
  Await<bool> reactivated;
  world_.hosts[1]->ReactivateObject(instance, vault_->loid(),
                                    reactivated.Sink());
  world_.Run();
  ASSERT_TRUE(reactivated.Ready());
  EXPECT_TRUE(*reactivated.Get());
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(instance));
  EXPECT_TRUE(object->active());
  EXPECT_EQ(object->host(), world_.hosts[1]->loid());
  EXPECT_EQ(world_.hosts[1]->running_count(), 1u);
}

TEST_F(HostObjectTest, FinishObjectFreesResources) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(1), started.Sink());
  host_->FinishObject(started.Get()->front());
  EXPECT_EQ(host_->running_count(), 0u);
}

// ---- Information reporting ---------------------------------------------------------

TEST_F(HostObjectTest, GetCompatibleVaults) {
  Await<std::vector<Loid>> vaults;
  host_->GetCompatibleVaults(vaults.Sink());
  ASSERT_TRUE(vaults.Get().ok());
  ASSERT_EQ(vaults.Get()->size(), 1u);
  EXPECT_EQ(vaults.Get()->front(), vault_->loid());
}

TEST_F(HostObjectTest, VaultOkProbesCompatibility) {
  Await<bool> ok;
  host_->VaultOk(vault_->loid(), ok.Sink());
  world_.Run();
  EXPECT_TRUE(*ok.Get());
  // A vault restricted to another architecture says no.
  VaultSpec picky;
  picky.name = "picky";
  picky.domain = 0;
  picky.compatible_arches = {"sparc"};
  auto* sparc_vault = world_.kernel.AddActor<VaultObject>(
      world_.kernel.minter().Mint(LoidSpace::kVault, 0), picky);
  Await<bool> not_ok;
  host_->VaultOk(sparc_vault->loid(), not_ok.Sink());
  world_.Run();
  EXPECT_FALSE(*not_ok.Get());
}

TEST_F(HostObjectTest, AttributesPopulated) {
  const AttributeDatabase& attrs = host_->attributes();
  EXPECT_EQ(attrs.Get("host_arch")->as_string(), "x86");
  EXPECT_EQ(attrs.Get("host_os_name")->as_string(), "Linux");
  EXPECT_EQ(attrs.Get("host_cpus")->as_int(), 4);
  EXPECT_EQ(attrs.Get("host_kind")->as_string(), "unix");
  EXPECT_TRUE(attrs.Has("host_load"));
  EXPECT_TRUE(attrs.Has("host_cost_per_cpu_second"));
  EXPECT_TRUE(attrs.Has("compatible_vaults"));
  EXPECT_TRUE(attrs.Has("host_policy"));
}

TEST_F(HostObjectTest, AttributesTrackRunningObjects) {
  Await<std::vector<Loid>> started;
  host_->StartObject(StartRequest(2), started.Sink());
  const AttributeDatabase& attrs = host_->attributes();
  EXPECT_EQ(attrs.Get("host_running_objects")->as_int(), 2);
  EXPECT_EQ(attrs.Get("host_available_memory_mb")->as_int(),
            1024 - 2 * 64);
}

TEST_F(HostObjectTest, EffectiveSpeedDegradesWithMultiplexing) {
  const double idle_speed = host_->EffectiveSpeedPerObject();
  for (int i = 0; i < 8; ++i) {
    Await<std::vector<Loid>> started;
    host_->StartObject(StartRequest(1), started.Sink());
    ASSERT_TRUE(started.Get().ok());
  }
  // 8 objects on 4 CPUs: each sees about half speed.
  EXPECT_NEAR(host_->EffectiveSpeedPerObject(), idle_speed / 2.0,
              idle_speed * 0.01);
}

TEST_F(HostObjectTest, PushesRecordIntoCollection) {
  EXPECT_EQ(world_.collection->record_count(), 0u);
  world_.Populate();
  EXPECT_EQ(world_.collection->record_count(), world_.hosts.size());
  auto records = world_.collection->QueryLocal("$host_arch == \"x86\"");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), world_.hosts.size());
}

TEST_F(HostObjectTest, SpikeRaisesExportedLoad) {
  world_.Populate();
  host_->SpikeLoad(3.0);
  EXPECT_GT(host_->attributes().Get("host_load")->as_double(), 2.5);
}

TEST_F(HostObjectTest, PeriodicReassessmentPushesUpdates) {
  world_.Populate();
  const auto before = world_.collection->updates_applied();
  host_->StartReassessment();
  world_.kernel.RunFor(Duration::Minutes(1));
  host_->StopReassessment();
  EXPECT_GT(world_.collection->updates_applied(), before + 3);
}

}  // namespace
}  // namespace legion
