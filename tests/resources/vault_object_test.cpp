#include "resources/vault_object.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;

class VaultObjectTest : public ::testing::Test {
 protected:
  VaultObjectTest() {
    VaultSpec spec;
    spec.name = "vault";
    spec.domain = 2;
    spec.capacity_mb = 1;  // 1 MiB, easy to fill
    spec.cost_per_mb = 0.5;
    vault_ = kernel_.AddActor<VaultObject>(
        kernel_.minter().Mint(LoidSpace::kVault, 2), spec);
  }

  Opr MakeOpr(std::uint64_t serial, std::size_t body_bytes = 100) {
    Opr opr;
    opr.object = Loid(LoidSpace::kObject, 0, serial);
    opr.class_loid = Loid(LoidSpace::kClass, 0, 1);
    opr.body.assign(body_bytes, 0x55);
    return opr;
  }

  SimKernel kernel_;
  VaultObject* vault_;
};

TEST_F(VaultObjectTest, StoreFetchDeleteRoundTrip) {
  Await<bool> stored;
  vault_->StoreOpr(MakeOpr(1), stored.Sink());
  EXPECT_TRUE(*stored.Get());
  EXPECT_EQ(vault_->stored_count(), 1u);

  Await<Opr> fetched;
  vault_->FetchOpr(Loid(LoidSpace::kObject, 0, 1), fetched.Sink());
  ASSERT_TRUE(fetched.Get().ok());
  EXPECT_EQ(fetched.Get()->body.size(), 100u);

  Await<bool> deleted;
  vault_->DeleteOpr(Loid(LoidSpace::kObject, 0, 1), deleted.Sink());
  EXPECT_TRUE(*deleted.Get());
  EXPECT_EQ(vault_->stored_count(), 0u);
  EXPECT_EQ(vault_->used_bytes(), 0u);
}

TEST_F(VaultObjectTest, FetchMissingFails) {
  Await<Opr> fetched;
  vault_->FetchOpr(Loid(LoidSpace::kObject, 0, 9), fetched.Sink());
  EXPECT_EQ(fetched.Get().code(), ErrorCode::kNotFound);
  Await<bool> deleted;
  vault_->DeleteOpr(Loid(LoidSpace::kObject, 0, 9), deleted.Sink());
  EXPECT_FALSE(*deleted.Get());
}

TEST_F(VaultObjectTest, CapacityEnforced) {
  // ~0.5 MiB each; the third exceeds the 1 MiB capacity.
  Await<bool> a, b, c;
  vault_->StoreOpr(MakeOpr(1, 512 * 1024), a.Sink());
  vault_->StoreOpr(MakeOpr(2, 400 * 1024), b.Sink());
  vault_->StoreOpr(MakeOpr(3, 512 * 1024), c.Sink());
  EXPECT_TRUE(*a.Get());
  EXPECT_TRUE(*b.Get());
  EXPECT_EQ(c.Get().code(), ErrorCode::kNoResources);
}

TEST_F(VaultObjectTest, OverwriteReplacesNotAccumulates) {
  Await<bool> first, second;
  vault_->StoreOpr(MakeOpr(1, 700 * 1024), first.Sink());
  ASSERT_TRUE(*first.Get());
  // Rewriting the same object's OPR replaces the old bytes, so this
  // still fits.
  vault_->StoreOpr(MakeOpr(1, 800 * 1024), second.Sink());
  EXPECT_TRUE(*second.Get());
  EXPECT_EQ(vault_->stored_count(), 1u);
}

TEST_F(VaultObjectTest, AccruesCost) {
  Await<bool> stored;
  vault_->StoreOpr(MakeOpr(1, 512 * 1024), stored.Sink());
  ASSERT_TRUE(*stored.Get());
  EXPECT_NEAR(vault_->accrued_cost(), 0.5 * 0.5, 0.01);
}

TEST_F(VaultObjectTest, CompatibilityByArch) {
  VaultSpec spec;
  spec.domain = 2;
  spec.compatible_arches = {"x86", "alpha"};
  auto* picky = kernel_.AddActor<VaultObject>(
      kernel_.minter().Mint(LoidSpace::kVault, 2), spec);
  EXPECT_TRUE(picky->CompatibleWith(2, "x86"));
  EXPECT_TRUE(picky->CompatibleWith(2, "alpha"));
  EXPECT_FALSE(picky->CompatibleWith(2, "sparc"));
}

TEST_F(VaultObjectTest, CompatibilityByDomainPrivacy) {
  VaultSpec spec;
  spec.domain = 2;
  spec.public_access = false;
  auto* private_vault = kernel_.AddActor<VaultObject>(
      kernel_.minter().Mint(LoidSpace::kVault, 2), spec);
  EXPECT_TRUE(private_vault->CompatibleWith(2, "x86"));
  EXPECT_FALSE(private_vault->CompatibleWith(3, "x86"));
  // Public vault accepts any domain.
  EXPECT_TRUE(vault_->CompatibleWith(7, "x86"));
}

TEST_F(VaultObjectTest, ProbeAnswersCompatibility) {
  Await<bool> yes;
  vault_->Probe(0, "x86", yes.Sink());
  EXPECT_TRUE(*yes.Get());
}

TEST_F(VaultObjectTest, AttributesExported) {
  const AttributeDatabase& attrs = vault_->attributes();
  EXPECT_EQ(attrs.Get("vault_domain")->as_int(), 2);
  EXPECT_EQ(attrs.Get("vault_capacity_mb")->as_int(), 1);
  EXPECT_TRUE(attrs.Get("vault_public")->as_bool());
  Await<bool> stored;
  vault_->StoreOpr(MakeOpr(1), stored.Sink());
  EXPECT_EQ(vault_->attributes().Get("vault_stored_oprs")->as_int(), 1);
}

}  // namespace
}  // namespace legion
