// Reservation semantics (paper section 3.1, Table 2).
#include "resources/reservation.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

Loid HostLoid() { return Loid(LoidSpace::kHost, 0, 1); }
Loid VaultLoid() { return Loid(LoidSpace::kVault, 0, 2); }
Loid Requester() { return Loid(LoidSpace::kService, 0, 3); }

class ReservationFixture : public ::testing::Test {
 protected:
  ReservationFixture()
      : authority_(99), table_(HostCapacity{4, 1024, 2.0}) {}

  ReservationToken Issue(SimTime start, Duration duration,
                         ReservationType type,
                         Duration timeout = Duration::Zero()) {
    return authority_.Issue(HostLoid(), VaultLoid(), start, duration, timeout,
                            type);
  }

  Status Admit(const ReservationToken& token, SimTime now,
               double cpu = 1.0, std::size_t memory = 64) {
    return table_.Admit(token, Requester(), memory, cpu, now);
  }

  TokenAuthority authority_;
  ReservationTable table_;
};

TEST_F(ReservationFixture, AdmitAndCheck) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Check(token, SimTime(0)));
  EXPECT_EQ(table_.live_count(), 1u);
}

TEST_F(ReservationFixture, CheckFalseAfterWindowPasses) {
  auto token = Issue(SimTime(0), Duration::Seconds(10),
                     ReservationType::ReusableTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Check(token, SimTime(0) + Duration::Seconds(9)));
  EXPECT_FALSE(table_.Check(token, SimTime(0) + Duration::Seconds(10)));
}

TEST_F(ReservationFixture, CancelKillsReservation) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Cancel(token, SimTime(0)));
  EXPECT_FALSE(table_.Check(token, SimTime(1)));
  EXPECT_FALSE(table_.Cancel(token, SimTime(1)));  // second cancel fails
  EXPECT_FALSE(table_.Redeem(token, SimTime(1)).ok());
}

TEST_F(ReservationFixture, UnknownTokenNeverChecks) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  EXPECT_FALSE(table_.Check(token, SimTime(0)));
  EXPECT_FALSE(table_.Cancel(token, SimTime(0)));
  EXPECT_EQ(table_.Redeem(token, SimTime(0)).code(),
            ErrorCode::kInvalidToken);
}

TEST_F(ReservationFixture, ZeroDurationRejected) {
  auto token = Issue(SimTime(0), Duration::Zero(),
                     ReservationType::OneShotTimesharing());
  EXPECT_FALSE(Admit(token, SimTime(0)).ok());
}

// ---- The reuse bit ----------------------------------------------------------

TEST_F(ReservationFixture, OneShotTokenSingleUse) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Redeem(token, SimTime(1)).ok());
  EXPECT_EQ(table_.Redeem(token, SimTime(2)).code(),
            ErrorCode::kInvalidToken);
}

TEST_F(ReservationFixture, ReusableTokenMultipleUses) {
  // "A reusable reservation token can be passed in to multiple
  // StartObject() calls."
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::ReusableTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(table_.Redeem(token, SimTime(i)).ok()) << i;
  }
}

TEST_F(ReservationFixture, OneShotExpiresWhenJobDone) {
  // "a typical timesharing system that expires a reservation when the
  // job is done would have reuse = 0, share = 1".
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  ASSERT_TRUE(table_.Redeem(token, SimTime(1)).ok());
  table_.OnJobDone(token);
  EXPECT_EQ(table_.Find(token.serial)->state, ReservationState::kConsumed);
  EXPECT_FALSE(table_.Check(token, SimTime(2)));
}

TEST_F(ReservationFixture, ReusableSurvivesJobDone) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::ReusableTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  ASSERT_TRUE(table_.Redeem(token, SimTime(1)).ok());
  table_.OnJobDone(token);
  EXPECT_TRUE(table_.Check(token, SimTime(2)));
  EXPECT_TRUE(table_.Redeem(token, SimTime(3)).ok());
}

// ---- The share bit ------------------------------------------------------------

TEST_F(ReservationFixture, UnsharedTakesWholeResource) {
  // "An unshared reservation allocates the entire resource."
  auto exclusive = Issue(SimTime(0), Duration::Hours(1),
                         ReservationType::ReusableSpaceSharing());
  ASSERT_TRUE(Admit(exclusive, SimTime(0), /*cpu=*/1.0).ok());
  // Even a tiny shared reservation overlapping the window is refused.
  auto shared = Issue(SimTime(0) + Duration::Minutes(30), Duration::Minutes(5),
                      ReservationType::OneShotTimesharing());
  EXPECT_EQ(Admit(shared, SimTime(0), /*cpu=*/0.01).code(),
            ErrorCode::kNoResources);
}

TEST_F(ReservationFixture, UnsharedRefusedOverAnyOverlap) {
  auto shared = Issue(SimTime(0), Duration::Hours(1),
                      ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(shared, SimTime(0), /*cpu=*/0.1).ok());
  auto exclusive = Issue(SimTime(0) + Duration::Minutes(59), Duration::Hours(1),
                         ReservationType::OneShotSpaceSharing());
  EXPECT_EQ(Admit(exclusive, SimTime(0)).code(), ErrorCode::kNoResources);
}

TEST_F(ReservationFixture, DisjointWindowsCoexist) {
  auto morning = Issue(SimTime(0), Duration::Hours(1),
                       ReservationType::ReusableSpaceSharing());
  auto afternoon = Issue(SimTime(0) + Duration::Hours(2), Duration::Hours(1),
                         ReservationType::ReusableSpaceSharing());
  EXPECT_TRUE(Admit(morning, SimTime(0)).ok());
  EXPECT_TRUE(Admit(afternoon, SimTime(0)).ok());
  EXPECT_EQ(table_.live_count(), 2u);
}

TEST_F(ReservationFixture, SharedMultiplexesUpToCapacity) {
  // Capacity: 4 CPUs x 2.0 oversubscription = 8 concurrent CPU units.
  for (int i = 0; i < 8; ++i) {
    auto token = Issue(SimTime(0), Duration::Hours(1),
                       ReservationType::OneShotTimesharing());
    EXPECT_TRUE(Admit(token, SimTime(0), /*cpu=*/1.0, /*mem=*/64).ok()) << i;
  }
  auto overflow = Issue(SimTime(0), Duration::Hours(1),
                        ReservationType::OneShotTimesharing());
  EXPECT_EQ(Admit(overflow, SimTime(0)).code(), ErrorCode::kNoResources);
}

TEST_F(ReservationFixture, SharedMemoryIsAlsoBounded) {
  auto big = Issue(SimTime(0), Duration::Hours(1),
                   ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(big, SimTime(0), /*cpu=*/0.5, /*mem=*/900).ok());
  auto second = Issue(SimTime(0), Duration::Hours(1),
                      ReservationType::OneShotTimesharing());
  EXPECT_EQ(Admit(second, SimTime(0), /*cpu=*/0.5, /*mem=*/200).code(),
            ErrorCode::kNoResources);
}

TEST_F(ReservationFixture, MemoryOverCapacityRejectedOutright) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing());
  EXPECT_FALSE(Admit(token, SimTime(0), 1.0, /*mem=*/4096).ok());
}

// ---- Timeouts --------------------------------------------------------------------

TEST_F(ReservationFixture, PendingReservationExpiresAfterConfirmTimeout) {
  // "The timeout period indicates how long the recipient has to confirm
  // the reservation if the start time indicates an instantaneous
  // reservation."
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::OneShotTimesharing(),
                     /*timeout=*/Duration::Minutes(5));
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Check(token, SimTime(0) + Duration::Minutes(4)));
  EXPECT_FALSE(table_.Check(token, SimTime(0) + Duration::Minutes(5)));
  EXPECT_EQ(table_.Redeem(token, SimTime(0) + Duration::Minutes(6)).code(),
            ErrorCode::kExpired);
}

TEST_F(ReservationFixture, ConfirmationStopsTheTimeout) {
  auto token = Issue(SimTime(0), Duration::Hours(1),
                     ReservationType::ReusableTimesharing(),
                     /*timeout=*/Duration::Minutes(5));
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  // Presenting the token with StartObject is the implicit confirmation.
  ASSERT_TRUE(table_.Redeem(token, SimTime(0) + Duration::Minutes(1)).ok());
  EXPECT_TRUE(table_.Check(token, SimTime(0) + Duration::Minutes(30)));
}

TEST_F(ReservationFixture, EarlyPresentationConfirmsFutureReservation) {
  auto token = Issue(SimTime(0) + Duration::Hours(1), Duration::Hours(1),
                     ReservationType::ReusableTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_TRUE(table_.Redeem(token, SimTime(0)).ok());
}

TEST_F(ReservationFixture, RedeemAfterWindowExpires) {
  auto token = Issue(SimTime(0), Duration::Seconds(10),
                     ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(token, SimTime(0)).ok());
  EXPECT_EQ(table_.Redeem(token, SimTime(0) + Duration::Seconds(11)).code(),
            ErrorCode::kExpired);
}

TEST_F(ReservationFixture, ExpiredReservationFreesCapacity) {
  auto exclusive = Issue(SimTime(0), Duration::Seconds(10),
                         ReservationType::ReusableSpaceSharing());
  ASSERT_TRUE(Admit(exclusive, SimTime(0)).ok());
  // After expiry a new exclusive reservation over the same span works.
  auto next = Issue(SimTime(0) + Duration::Seconds(20), Duration::Hours(1),
                    ReservationType::ReusableSpaceSharing());
  EXPECT_TRUE(Admit(next, SimTime(0) + Duration::Seconds(20)).ok());
  EXPECT_GE(table_.expired(), 1u);
}

TEST_F(ReservationFixture, StatsCount) {
  auto a = Issue(SimTime(0), Duration::Hours(1),
                 ReservationType::ReusableSpaceSharing());
  ASSERT_TRUE(Admit(a, SimTime(0)).ok());
  auto b = Issue(SimTime(0), Duration::Hours(1),
                 ReservationType::ReusableSpaceSharing());
  ASSERT_FALSE(Admit(b, SimTime(0)).ok());
  table_.Cancel(a, SimTime(0));
  EXPECT_EQ(table_.admitted(), 1u);
  EXPECT_EQ(table_.rejected(), 1u);
  EXPECT_EQ(table_.cancelled(), 1u);
}

TEST_F(ReservationFixture, SharedCpuLoadAtInstant) {
  auto a = Issue(SimTime(0), Duration::Hours(1),
                 ReservationType::OneShotTimesharing());
  auto b = Issue(SimTime(0) + Duration::Minutes(30), Duration::Hours(1),
                 ReservationType::OneShotTimesharing());
  ASSERT_TRUE(Admit(a, SimTime(0), 1.0).ok());
  ASSERT_TRUE(Admit(b, SimTime(0), 2.0).ok());
  EXPECT_DOUBLE_EQ(table_.SharedCpuLoadAt(SimTime(0) + Duration::Minutes(10)),
                   1.0);
  EXPECT_DOUBLE_EQ(table_.SharedCpuLoadAt(SimTime(0) + Duration::Minutes(45)),
                   3.0);
  EXPECT_DOUBLE_EQ(
      table_.SharedCpuLoadAt(SimTime(0) + Duration::Minutes(80)), 2.0);
}

// ---- Batched admission -----------------------------------------------------

TEST_F(ReservationFixture, AdmitBatchReportsPerSlotStatuses) {
  std::vector<ReservationTable::BatchAdmitSlot> slots;
  for (int i = 0; i < 3; ++i) {
    ReservationTable::BatchAdmitSlot slot;
    slot.token = Issue(SimTime(0), Duration::Hours(1),
                       ReservationType::OneShotTimesharing());
    slot.requester = Requester();
    slot.memory_mb = 64;
    slot.cpu_fraction = 1.0;
    slots.push_back(slot);
  }
  // Slot 2 demands more memory than the whole machine: it alone fails.
  slots[2].memory_mb = 4096;
  const std::vector<Status> statuses = table_.AdmitBatch(slots, SimTime(0));
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(statuses[2].code(), ErrorCode::kNoResources);
  EXPECT_EQ(table_.live_count(), 2u);
  EXPECT_EQ(table_.admitted(), 2u);
  EXPECT_EQ(table_.rejected(), 1u);
}

TEST_F(ReservationFixture, AdmitBatchEarlierSlotsClaimCapacity) {
  // One snapshot: slot i+1 sees slot i's grant.  Two exclusive windows
  // over the same span cannot both land, whichever order they arrive in.
  std::vector<ReservationTable::BatchAdmitSlot> slots(2);
  for (auto& slot : slots) {
    slot.token = Issue(SimTime(0), Duration::Hours(1),
                       ReservationType::ReusableSpaceSharing());
    slot.requester = Requester();
    slot.memory_mb = 64;
  }
  const std::vector<Status> statuses = table_.AdmitBatch(slots, SimTime(0));
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].code(), ErrorCode::kNoResources);
  EXPECT_EQ(table_.live_count(), 1u);
}

TEST_F(ReservationFixture, AdmitBatchSharedCapacityAccumulates) {
  // 4 CPUs x 2.0 oversubscription = 8 units; slots of 1.0 each, so a
  // 10-slot batch grants exactly the first 8.
  std::vector<ReservationTable::BatchAdmitSlot> slots(10);
  for (auto& slot : slots) {
    slot.token = Issue(SimTime(0), Duration::Hours(1),
                       ReservationType::OneShotTimesharing());
    slot.requester = Requester();
    slot.memory_mb = 16;
    slot.cpu_fraction = 1.0;
  }
  const std::vector<Status> statuses = table_.AdmitBatch(slots, SimTime(0));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(statuses[i].ok()) << i;
  for (std::size_t i = 8; i < 10; ++i) {
    EXPECT_EQ(statuses[i].code(), ErrorCode::kNoResources) << i;
  }
  EXPECT_EQ(table_.live_count(), 8u);
}

TEST_F(ReservationFixture, AdmitBatchMatchesSequentialAdmits) {
  // A batch of n slots must decide exactly as n sequential Admit calls
  // (the batched==unbatched equivalence the Enactor relies on).
  ReservationTable sequential(HostCapacity{4, 1024, 2.0});
  std::vector<ReservationTable::BatchAdmitSlot> slots(6);
  std::vector<ReservationTable::BatchAdmitSlot> twins(6);
  TokenAuthority twin_authority(99);  // same seed as the fixture's
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const ReservationType type = (i % 2 == 0)
                                     ? ReservationType::OneShotTimesharing()
                                     : ReservationType::ReusableSpaceSharing();
    slots[i].token = Issue(SimTime(0), Duration::Hours(1), type);
    slots[i].requester = Requester();
    slots[i].memory_mb = 64;
    slots[i].cpu_fraction = 1.5;
    twins[i] = slots[i];
    twins[i].token = twin_authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                                          Duration::Hours(1), Duration::Zero(),
                                          type);
  }
  const std::vector<Status> batched = table_.AdmitBatch(slots, SimTime(0));
  for (std::size_t i = 0; i < twins.size(); ++i) {
    const Status single =
        sequential.Admit(twins[i].token, twins[i].requester,
                         twins[i].memory_mb, twins[i].cpu_fraction, SimTime(0));
    EXPECT_EQ(batched[i].ok(), single.ok()) << i;
    EXPECT_EQ(batched[i].code(), single.code()) << i;
  }
  EXPECT_EQ(table_.live_count(), sequential.live_count());
}

// ---- All four Table-2 types, parameterized -------------------------------------

struct TypeCase {
  ReservationType type;
  const char* name;
};

class ReservationTypeSweep : public ::testing::TestWithParam<TypeCase> {};

TEST_P(ReservationTypeSweep, AdmitCheckRedeemLifecycle) {
  TokenAuthority authority(7);
  ReservationTable table(HostCapacity{4, 1024, 2.0});
  auto token = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                               Duration::Hours(1), Duration::Zero(),
                               GetParam().type);
  ASSERT_TRUE(table.Admit(token, Requester(), 64, 1.0, SimTime(0)).ok());
  EXPECT_TRUE(table.Check(token, SimTime(1)));
  EXPECT_TRUE(table.Redeem(token, SimTime(1)).ok());
  // Reuse bit controls the second presentation.
  const bool second_ok = table.Redeem(token, SimTime(2)).ok();
  EXPECT_EQ(second_ok, GetParam().type.reuse);
  // Cancel always succeeds while live.
  EXPECT_TRUE(table.Cancel(token, SimTime(2)));
}

TEST_P(ReservationTypeSweep, ShareBitControlsCoexistence) {
  TokenAuthority authority(7);
  ReservationTable table(HostCapacity{4, 1024, 2.0});
  auto first = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                               Duration::Hours(1), Duration::Zero(),
                               GetParam().type);
  ASSERT_TRUE(table.Admit(first, Requester(), 64, 1.0, SimTime(0)).ok());
  auto second = authority.Issue(HostLoid(), VaultLoid(), SimTime(0),
                                Duration::Hours(1), Duration::Zero(),
                                ReservationType::OneShotTimesharing());
  const bool coexists =
      table.Admit(second, Requester(), 64, 1.0, SimTime(0)).ok();
  EXPECT_EQ(coexists, GetParam().type.share);
}

INSTANTIATE_TEST_SUITE_P(
    TableTwo, ReservationTypeSweep,
    ::testing::Values(
        TypeCase{ReservationType::OneShotSpaceSharing(), "oneshot_space"},
        TypeCase{ReservationType::ReusableSpaceSharing(), "reusable_space"},
        TypeCase{ReservationType::OneShotTimesharing(), "oneshot_time"},
        TypeCase{ReservationType::ReusableTimesharing(), "reusable_time"}),
    [](const ::testing::TestParamInfo<TypeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace legion
