#include "resources/placement_policy.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

ReservationRequest RequestFromDomain(std::uint32_t domain) {
  ReservationRequest request;
  request.requester = Loid(LoidSpace::kService, domain, 1);
  request.requester_domain = domain;
  request.vault = Loid(LoidSpace::kVault, 0, 1);
  return request;
}

TEST(PlacementPolicyTest, AcceptAllAccepts) {
  AcceptAllPolicy policy;
  AttributeDatabase attrs;
  EXPECT_TRUE(policy.Permit(RequestFromDomain(3), attrs, SimTime(0)).ok());
  EXPECT_EQ(policy.Describe(), "accept-all");
}

TEST(DomainRefusalPolicyTest, RefusesListedDomains) {
  // The paper's attribute example: "domains from which it refuses to
  // accept object instantiation requests".
  DomainRefusalPolicy policy({2, 5});
  AttributeDatabase attrs;
  EXPECT_TRUE(policy.Permit(RequestFromDomain(1), attrs, SimTime(0)).ok());
  EXPECT_EQ(policy.Permit(RequestFromDomain(2), attrs, SimTime(0)).code(),
            ErrorCode::kRefused);
  EXPECT_EQ(policy.Permit(RequestFromDomain(5), attrs, SimTime(0)).code(),
            ErrorCode::kRefused);
  EXPECT_TRUE(policy.Permit(RequestFromDomain(6), attrs, SimTime(0)).ok());
}

TEST(LoadThresholdPolicyTest, RefusesWhenLoaded) {
  LoadThresholdPolicy policy(1.5);
  AttributeDatabase attrs;
  attrs.Set("host_load", 1.0);
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, SimTime(0)).ok());
  attrs.Set("host_load", 2.0);
  EXPECT_EQ(policy.Permit(RequestFromDomain(0), attrs, SimTime(0)).code(),
            ErrorCode::kRefused);
}

TEST(LoadThresholdPolicyTest, MissingLoadAttributeAccepts) {
  LoadThresholdPolicy policy(1.5);
  AttributeDatabase attrs;
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, SimTime(0)).ok());
}

TEST(TimeOfDayPolicyTest, OpenWindowWithinDay) {
  // Day length 100s; open during [0.25, 0.75) of the day.
  TimeOfDayPolicy policy(Duration::Seconds(100), 0.25, 0.75);
  AttributeDatabase attrs;
  auto at = [](double s) { return SimTime(static_cast<int64_t>(s * 1e6)); };
  EXPECT_FALSE(policy.Permit(RequestFromDomain(0), attrs, at(10)).ok());
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, at(30)).ok());
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, at(74)).ok());
  EXPECT_FALSE(policy.Permit(RequestFromDomain(0), attrs, at(80)).ok());
  // Next simulated day wraps around.
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, at(130)).ok());
}

TEST(TimeOfDayPolicyTest, OvernightWindowWraps) {
  // Open from 0.8 of the day through 0.2 of the next (night shift).
  TimeOfDayPolicy policy(Duration::Seconds(100), 0.8, 0.2);
  AttributeDatabase attrs;
  auto at = [](double s) { return SimTime(static_cast<int64_t>(s * 1e6)); };
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, at(90)).ok());
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, at(10)).ok());
  EXPECT_FALSE(policy.Permit(RequestFromDomain(0), attrs, at(50)).ok());
}

TEST(CompositePolicyTest, AllMustAccept) {
  CompositePolicy policy;
  policy.Add(std::make_unique<DomainRefusalPolicy>(
      std::vector<std::uint32_t>{9}));
  policy.Add(std::make_unique<LoadThresholdPolicy>(1.0));
  AttributeDatabase attrs;
  attrs.Set("host_load", 0.5);
  EXPECT_TRUE(policy.Permit(RequestFromDomain(1), attrs, SimTime(0)).ok());
  // First policy refuses.
  EXPECT_FALSE(policy.Permit(RequestFromDomain(9), attrs, SimTime(0)).ok());
  // Second policy refuses.
  attrs.Set("host_load", 2.0);
  EXPECT_FALSE(policy.Permit(RequestFromDomain(1), attrs, SimTime(0)).ok());
}

TEST(CompositePolicyTest, EmptyCompositeAccepts) {
  CompositePolicy policy;
  AttributeDatabase attrs;
  EXPECT_TRUE(policy.Permit(RequestFromDomain(0), attrs, SimTime(0)).ok());
}

TEST(PolicyDescribeTest, DescriptionsAreInformative) {
  DomainRefusalPolicy refusal({1, 2});
  EXPECT_EQ(refusal.Describe(), "refuse-domains[1,2]");
  LoadThresholdPolicy load(2.0);
  EXPECT_NE(load.Describe().find("load-below-"), std::string::npos);
  CompositePolicy composite;
  composite.Add(std::make_unique<AcceptAllPolicy>());
  composite.Add(std::make_unique<LoadThresholdPolicy>(1.0));
  EXPECT_NE(composite.Describe().find('+'), std::string::npos);
}

}  // namespace
}  // namespace legion
