#include "resources/queue_system.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

BatchJob Job(std::uint64_t id, double cpus = 1.0,
             Duration runtime = Duration::Minutes(30), SimTime submitted = {}) {
  BatchJob job;
  job.id = id;
  job.instances = {Loid(LoidSpace::kObject, 0, id)};
  job.cpu_fraction = cpus;
  job.estimated_runtime = runtime;
  job.submitted = submitted;
  return job;
}

TEST(FifoQueueTest, StartsInOrderUpToSlots) {
  FifoQueue queue(2.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  for (std::uint64_t i = 1; i <= 4; ++i) queue.Submit(Job(i));
  queue.Poll(SimTime(0));
  EXPECT_EQ(started, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(queue.queued_count(), 2u);
  EXPECT_EQ(queue.running_count(), 2u);
}

TEST(FifoQueueTest, StrictFcfsBlocksBehindBigJob) {
  FifoQueue queue(2.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  queue.Submit(Job(1, 2.0));  // fills the machine
  queue.Submit(Job(2, 2.0));  // must wait
  queue.Submit(Job(3, 0.5));  // FIFO: must also wait (no backfill)
  queue.Poll(SimTime(0));
  EXPECT_EQ(started, (std::vector<std::uint64_t>{1}));
  queue.JobFinished(1);
  queue.Poll(SimTime(1));
  EXPECT_EQ(started, (std::vector<std::uint64_t>{1, 2}));
}

TEST(FifoQueueTest, JobFinishedFreesSlot) {
  FifoQueue queue(1.0);
  int starts = 0;
  queue.SetCallbacks([&](const BatchJob&) { ++starts; }, nullptr);
  queue.Submit(Job(1));
  queue.Submit(Job(2));
  queue.Poll(SimTime(0));
  EXPECT_EQ(starts, 1);
  queue.JobFinished(1);
  queue.Poll(SimTime(1));
  EXPECT_EQ(starts, 2);
}

TEST(QueueSystemTest, CancelQueuedJob) {
  FifoQueue queue(1.0);
  queue.Submit(Job(1, 2.0));  // cannot start (too big) -- stays queued
  EXPECT_TRUE(queue.Cancel(1));
  EXPECT_FALSE(queue.Cancel(1));
  EXPECT_EQ(queue.queued_count(), 0u);
}

TEST(QueueSystemTest, WaitEstimateGrowsWithBacklog) {
  FifoQueue queue(2.0);
  const Duration empty_wait = queue.EstimateWait(SimTime(0));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    queue.Submit(Job(i, 1.0, Duration::Hours(1)));
  }
  EXPECT_GT(queue.EstimateWait(SimTime(0)), empty_wait);
  EXPECT_NEAR(queue.EstimateWait(SimTime(0)).seconds(), 5 * 3600.0, 1.0);
}

TEST(CondorLikeQueueTest, OwnerReturnVacatesAndRequeues) {
  CondorLikeQueue queue(4.0, /*owner_return_prob=*/1.0, /*seed=*/5);
  std::vector<std::uint64_t> started, vacated;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     [&](const BatchJob& job) { vacated.push_back(job.id); });
  queue.Submit(Job(1));
  queue.Poll(SimTime(0));
  ASSERT_EQ(started.size(), 1u);
  // Next poll: the owner returns (p=1), the job is vacated and restarts.
  queue.Poll(SimTime(1));
  EXPECT_EQ(vacated, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(started.size(), 2u);  // restarted within the same cycle
  EXPECT_EQ(queue.jobs_vacated(), 1u);
}

TEST(CondorLikeQueueTest, NoPreemptionWhenOwnersAway) {
  CondorLikeQueue queue(4.0, /*owner_return_prob=*/0.0, /*seed=*/5);
  int vacates = 0;
  queue.SetCallbacks(nullptr, [&](const BatchJob&) { ++vacates; });
  queue.Submit(Job(1));
  for (int i = 0; i < 50; ++i) queue.Poll(SimTime(i));
  EXPECT_EQ(vacates, 0);
}

TEST(LoadLevelerLikeQueueTest, ShortJobsJumpTheQueue) {
  LoadLevelerLikeQueue queue(1.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  queue.Submit(Job(1, 1.0, Duration::Hours(8)));   // class 0
  queue.Submit(Job(2, 1.0, Duration::Minutes(5))); // class 3
  queue.Submit(Job(3, 1.0, Duration::Hours(2)));   // class 1
  queue.Poll(SimTime(0));
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0], 2u);  // the short job wins
  queue.JobFinished(2);
  queue.Poll(SimTime(1));
  EXPECT_EQ(started[1], 3u);  // then the medium one
}

TEST(LoadLevelerLikeQueueTest, AgingEventuallyPromotesLongJobs) {
  LoadLevelerLikeQueue queue(1.0, /*aging=*/Duration::Minutes(10));
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  // An old long job vs a fresh short job: age credit (4 classes' worth
  // after 40+ minutes) beats the class gap of 3.
  queue.Submit(Job(1, 1.0, Duration::Hours(8),
                   SimTime(0)));  // submitted at t=0
  const SimTime now = SimTime(0) + Duration::Minutes(50);
  BatchJob fresh = Job(2, 1.0, Duration::Minutes(5), now);
  queue.Submit(fresh);
  queue.Poll(now);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0], 1u);
}

TEST(LoadLevelerLikeQueueTest, ClassOfBoundaries) {
  EXPECT_EQ(LoadLevelerLikeQueue::ClassOf(Job(1, 1, Duration::Minutes(10))), 3);
  EXPECT_EQ(LoadLevelerLikeQueue::ClassOf(Job(1, 1, Duration::Minutes(30))), 2);
  EXPECT_EQ(LoadLevelerLikeQueue::ClassOf(Job(1, 1, Duration::Hours(2))), 1);
  EXPECT_EQ(LoadLevelerLikeQueue::ClassOf(Job(1, 1, Duration::Hours(8))), 0);
}

TEST(MauiLikeQueueTest, SupportsReservations) {
  MauiLikeQueue queue(4.0);
  EXPECT_TRUE(queue.SupportsReservations());
  FifoQueue fifo(4.0);
  EXPECT_FALSE(fifo.SupportsReservations());
}

TEST(MauiLikeQueueTest, ReservationWindowBlocksConflictingBackfill) {
  MauiLikeQueue queue(2.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  // Reserve both CPUs for [10min, 70min).
  queue.AddReservationWindow(SimTime(0) + Duration::Minutes(10),
                             SimTime(0) + Duration::Minutes(70), 2.0);
  // A 30-minute job submitted now would overrun into the window: blocked.
  queue.Submit(Job(1, 2.0, Duration::Minutes(30)));
  queue.Poll(SimTime(0));
  EXPECT_TRUE(started.empty());
  // A 5-minute job fits before the window: backfilled.
  queue.Submit(Job(2, 2.0, Duration::Minutes(5)));
  queue.Poll(SimTime(0));
  EXPECT_EQ(started, (std::vector<std::uint64_t>{2}));
}

TEST(MauiLikeQueueTest, ReservedJobStartsInItsWindow) {
  MauiLikeQueue queue(2.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  const SimTime window_start = SimTime(0) + Duration::Minutes(10);
  const SimTime window_end = SimTime(0) + Duration::Minutes(70);
  queue.AddReservationWindow(window_start, window_end, 1.0);
  BatchJob reserved = Job(1, 1.0, Duration::Minutes(60));
  reserved.reserved = true;
  reserved.window_start = window_start;
  reserved.window_end = window_end;
  queue.Submit(reserved);
  queue.Poll(SimTime(0));
  EXPECT_TRUE(started.empty());  // window not open
  queue.Poll(window_start);
  EXPECT_EQ(started, (std::vector<std::uint64_t>{1}));
}

TEST(MauiLikeQueueTest, ReservedAtAggregatesWindows) {
  MauiLikeQueue queue(8.0);
  queue.AddReservationWindow(SimTime(100), SimTime(200), 2.0);
  queue.AddReservationWindow(SimTime(150), SimTime(250), 3.0);
  EXPECT_DOUBLE_EQ(queue.ReservedAt(SimTime(99)), 0.0);
  EXPECT_DOUBLE_EQ(queue.ReservedAt(SimTime(120)), 2.0);
  EXPECT_DOUBLE_EQ(queue.ReservedAt(SimTime(180)), 5.0);
  EXPECT_DOUBLE_EQ(queue.ReservedAt(SimTime(220)), 3.0);
  queue.RemoveReservationWindow(SimTime(100), SimTime(200), 2.0);
  EXPECT_DOUBLE_EQ(queue.ReservedAt(SimTime(120)), 0.0);
  EXPECT_EQ(queue.window_count(), 1u);
}

TEST(MauiLikeQueueTest, BackfillSkipsBlockedHeadJob) {
  MauiLikeQueue queue(2.0);
  std::vector<std::uint64_t> started;
  queue.SetCallbacks([&](const BatchJob& job) { started.push_back(job.id); },
                     nullptr);
  queue.AddReservationWindow(SimTime(0) + Duration::Minutes(20),
                             SimTime(0) + Duration::Minutes(90), 2.0);
  queue.Submit(Job(1, 2.0, Duration::Hours(1)));    // blocked by the window
  queue.Submit(Job(2, 1.0, Duration::Minutes(10))); // fits before it
  queue.Poll(SimTime(0));
  EXPECT_EQ(started, (std::vector<std::uint64_t>{2}));
}

}  // namespace
}  // namespace legion
