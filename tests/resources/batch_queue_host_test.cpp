// Batch Queue Host Objects: queue-fronted machines, reservation
// pass-through (Maui), and the paper's "unavoidable potential for
// conflict" between reservations and queue delays.
#include "resources/batch_queue_host.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class BatchQueueHostTest : public ::testing::Test {
 protected:
  BatchQueueHostTest() : world_() {
    klass_ = world_.MakeClass("app", 64, 1.0);
    vault_ = world_.vaults[0];
  }

  HostSpec Spec(std::uint32_t cpus) {
    HostSpec spec;
    spec.name = "batch";
    spec.cpus = cpus;
    spec.memory_mb = 4096;
    spec.domain = 0;
    spec.load.initial = 0.0;
    spec.load.mean = 0.0;
    spec.load.volatility = 0.0;
    return spec;
  }

  BatchQueueHost* MakeFifoHost(std::uint32_t cpus) {
    auto* host = world_.kernel.AddActor<BatchQueueHost>(
        world_.kernel.minter().Mint(LoidSpace::kHost, 0), Spec(cpus),
        /*secret=*/777, std::make_unique<FifoQueue>(cpus),
        /*poll=*/Duration::Seconds(10));
    host->AddCompatibleVault(vault_->loid());
    host->StartQueuePolling();
    return host;
  }

  MauiHost* MakeMauiHost(std::uint32_t cpus) {
    auto* host = world_.kernel.AddActor<MauiHost>(
        world_.kernel.minter().Mint(LoidSpace::kHost, 0), Spec(cpus),
        /*secret=*/888, /*poll=*/Duration::Seconds(10));
    host->AddCompatibleVault(vault_->loid());
    host->StartQueuePolling();
    return host;
  }

  StartObjectRequest StartRequest(std::size_t count,
                                  ReservationToken token = {}) {
    StartObjectRequest request;
    request.class_loid = klass_->loid();
    for (std::size_t i = 0; i < count; ++i) {
      request.instances.push_back(
          world_.kernel.minter().Mint(LoidSpace::kObject, 0));
    }
    request.token = token;
    request.vault = vault_->loid();
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    request.estimated_runtime = Duration::Minutes(30);
    request.factory = klass_->factory();
    return request;
  }

  ReservationRequest Reservation(SimTime start, Duration duration) {
    ReservationRequest request;
    request.vault = vault_->loid();
    request.start = start;
    request.duration = duration;
    request.type = ReservationType::OneShotTimesharing();
    request.requester = Loid(LoidSpace::kService, 0, 50);
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    return request;
  }

  TestWorld world_;
  ClassObject* klass_;
  VaultObject* vault_;
};

TEST_F(BatchQueueHostTest, SubmissionSucceedsImmediatelyJobRunsLater) {
  auto* host = MakeFifoHost(2);
  Await<std::vector<Loid>> first, second, third;
  host->StartObject(StartRequest(1), first.Sink());
  host->StartObject(StartRequest(1), second.Sink());
  host->StartObject(StartRequest(1), third.Sink());
  // All three submissions succeed (batch semantics) ...
  EXPECT_TRUE(first.Get().ok());
  EXPECT_TRUE(second.Get().ok());
  EXPECT_TRUE(third.Get().ok());
  // ... but only two run (2 slots); the third waits in the queue.
  EXPECT_EQ(host->running_count(), 2u);
  EXPECT_EQ(host->queue().queued_count(), 1u);
  // When a job finishes, the poller starts the next one.
  host->FinishObject(first.Get()->front());
  world_.kernel.RunFor(Duration::Seconds(15));
  EXPECT_EQ(host->running_count(), 2u);
  EXPECT_EQ(host->queue().queued_count(), 0u);
}

TEST_F(BatchQueueHostTest, QueuedInstancesAreInactiveUntilStart) {
  auto* host = MakeFifoHost(1);
  Await<std::vector<Loid>> a, b;
  host->StartObject(StartRequest(1), a.Sink());
  host->StartObject(StartRequest(1), b.Sink());
  auto* waiting =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(b.Get()->front()));
  ASSERT_NE(waiting, nullptr);
  EXPECT_FALSE(waiting->active());
  host->FinishObject(a.Get()->front());
  world_.kernel.RunFor(Duration::Seconds(15));
  EXPECT_TRUE(waiting->active());
}

TEST_F(BatchQueueHostTest, HostKindNamesQueueFlavor) {
  auto* fifo = MakeFifoHost(2);
  EXPECT_EQ(fifo->attributes().Get("host_kind")->as_string(), "batch-fifo");
  EXPECT_EQ(fifo->attributes().Get("native_reservations")->as_bool(), false);
  auto* maui = MakeMauiHost(2);
  EXPECT_EQ(maui->attributes().Get("host_kind")->as_string(), "batch-maui");
  EXPECT_EQ(maui->attributes().Get("native_reservations")->as_bool(), true);
}

TEST_F(BatchQueueHostTest, QueueAttributesExported) {
  auto* host = MakeFifoHost(1);
  Await<std::vector<Loid>> a, b, c;
  host->StartObject(StartRequest(1), a.Sink());
  host->StartObject(StartRequest(1), b.Sink());
  host->StartObject(StartRequest(1), c.Sink());
  EXPECT_EQ(host->attributes().Get("queue_length")->as_int(), 2);
  EXPECT_EQ(host->attributes().Get("queue_running")->as_int(), 1);
  EXPECT_GT(host->attributes().Get("queue_wait_estimate_s")->as_double(), 0.0);
}

TEST_F(BatchQueueHostTest, MauiReservationPassesThroughToCalendar) {
  auto* host = MakeMauiHost(2);
  auto* queue = dynamic_cast<MauiLikeQueue*>(&host->queue());
  ASSERT_NE(queue, nullptr);
  const SimTime start = world_.kernel.Now() + Duration::Minutes(30);
  Await<ReservationToken> token;
  host->MakeReservation(Reservation(start, Duration::Hours(1)), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  EXPECT_EQ(queue->window_count(), 1u);
  EXPECT_DOUBLE_EQ(queue->ReservedAt(start + Duration::Minutes(10)), 1.0);
  // Cancellation removes the window.
  Await<bool> cancelled;
  host->CancelReservation(*token.Get(), cancelled.Sink());
  EXPECT_TRUE(*cancelled.Get());
  EXPECT_EQ(queue->window_count(), 0u);
}

TEST_F(BatchQueueHostTest, BatchAdmissionConsultsQueuePerSlot) {
  // Regression: two windows that individually fit the 1-CPU Maui
  // calendar but jointly exceed it arrive in one batch.  The queue veto
  // runs interleaved with admission, so slot 1 is judged against slot
  // 0's already-registered window -- admit one, refuse the other --
  // exactly as two sequential MakeReservation calls would decide.
  auto* host = MakeMauiHost(1);
  auto* queue = dynamic_cast<MauiLikeQueue*>(&host->queue());
  ASSERT_NE(queue, nullptr);
  const SimTime start = world_.kernel.Now() + Duration::Minutes(10);
  ReservationBatchRequest batch;
  batch.requester = Loid(LoidSpace::kService, 0, 50);
  batch.batch_id = 1;
  batch.slots.push_back(
      BatchSlotRequest{0, Reservation(start, Duration::Hours(1))});
  batch.slots.push_back(
      BatchSlotRequest{1, Reservation(start, Duration::Hours(1))});
  Await<ReservationBatchReply> reply;
  host->MakeReservationBatch(batch, reply.Sink());
  ASSERT_TRUE(reply.Ready());
  ASSERT_TRUE(reply.Get().ok());
  const auto& outcomes = reply.Get()->outcomes;
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[1].status.code(), ErrorCode::kNoResources);
  // One calendar window, one live reservation: no overcommit.
  EXPECT_EQ(queue->window_count(), 1u);
  EXPECT_EQ(host->reservations().live_count(), 1u);
}

TEST_F(BatchQueueHostTest, FifoHostKeepsReservationsInHostTable) {
  auto* host = MakeFifoHost(2);
  Await<ReservationToken> token;
  host->MakeReservation(
      Reservation(world_.kernel.Now(), Duration::Hours(1)), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  // Host-table reservation, no queue calendar.
  EXPECT_EQ(host->reservations().live_count(), 1u);
}

TEST_F(BatchQueueHostTest, MauiHonorsReservedWindowDespiteBacklog) {
  auto* host = MakeMauiHost(1);
  // Reserve the single CPU starting in 5 minutes.
  const SimTime window = world_.kernel.Now() + Duration::Minutes(5);
  Await<ReservationToken> token;
  host->MakeReservation(Reservation(window, Duration::Hours(1)), token.Sink());
  ASSERT_TRUE(token.Get().ok());
  // A long competing job arrives now; Maui refuses to start it because
  // it would overrun the reserved window.
  Await<std::vector<Loid>> competing;
  host->StartObject(StartRequest(1), competing.Sink());
  ASSERT_TRUE(competing.Get().ok());
  EXPECT_EQ(host->running_count(), 0u);
  // The reserved job is submitted and starts on time.
  Await<std::vector<Loid>> reserved;
  host->StartObject(StartRequest(1, *token.Get()), reserved.Sink());
  ASSERT_TRUE(reserved.Get().ok());
  world_.kernel.RunFor(Duration::Minutes(6));
  auto* object = dynamic_cast<LegionObject*>(
      world_.kernel.FindActor(reserved.Get()->front()));
  ASSERT_NE(object, nullptr);
  EXPECT_TRUE(object->active());
  EXPECT_EQ(host->reservation_conflicts(), 0u);
}

TEST_F(BatchQueueHostTest, FifoHostConflictsWhenQueueDelaysReservedJob) {
  // The paper's "unavoidable potential for conflict": the FIFO queue
  // doesn't know about the host-table reservation, so a backlog pushes
  // the reserved job past its window.
  auto* host = MakeFifoHost(1);
  // Fill the machine with a job the queue will run for a long time.
  Await<std::vector<Loid>> blocker;
  host->StartObject(StartRequest(1), blocker.Sink());
  ASSERT_TRUE(blocker.Get().ok());
  // Reserve a short window opening in 1 minute.
  const SimTime window = world_.kernel.Now() + Duration::Minutes(1);
  Await<ReservationToken> token;
  host->MakeReservation(Reservation(window, Duration::Minutes(2)),
                        token.Sink());
  ASSERT_TRUE(token.Get().ok());
  Await<std::vector<Loid>> reserved;
  host->StartObject(StartRequest(1, *token.Get()), reserved.Sink());
  ASSERT_TRUE(reserved.Get().ok());
  // The blocker only finishes after the window has closed.
  world_.kernel.RunFor(Duration::Minutes(10));
  host->FinishObject(blocker.Get()->front());
  world_.kernel.RunFor(Duration::Minutes(1));
  EXPECT_EQ(host->reservation_conflicts(), 1u);
}

TEST_F(BatchQueueHostTest, CondorVacateSuspendsObjects) {
  HostSpec spec = Spec(2);
  auto* host = world_.kernel.AddActor<BatchQueueHost>(
      world_.kernel.minter().Mint(LoidSpace::kHost, 0), spec, 999,
      std::make_unique<CondorLikeQueue>(2.0, /*owner_return=*/1.0, 3),
      Duration::Seconds(10));
  host->AddCompatibleVault(vault_->loid());
  Await<std::vector<Loid>> started;
  host->StartObject(StartRequest(1), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  auto* object = dynamic_cast<LegionObject*>(
      world_.kernel.FindActor(started.Get()->front()));
  ASSERT_TRUE(object->active());
  // Next poll: owner returns, job vacated (and immediately requeued +
  // restarted within the same cycle -- cycle stealing continues).
  host->PollQueueNow();
  EXPECT_GE(host->queue().jobs_vacated(), 1u);
}

TEST_F(BatchQueueHostTest, VacatedObjectResumesWithStateIntact) {
  // Full suspend/resume cycle: the vacated object deactivates in place
  // and reactivates when the queue restarts the job, keeping its
  // attribute state.
  HostSpec spec = Spec(1);
  // p=1 the first polls, then owner leaves: emulate by polling once with
  // a one-job queue of slots 1 -- vacate + immediate restart happen in
  // the same scheduling cycle.
  auto* host = world_.kernel.AddActor<BatchQueueHost>(
      world_.kernel.minter().Mint(LoidSpace::kHost, 0), spec, 1001,
      std::make_unique<CondorLikeQueue>(1.0, /*owner_return=*/1.0, 7),
      Duration::Seconds(10));
  host->AddCompatibleVault(vault_->loid());
  Await<std::vector<Loid>> started;
  host->StartObject(StartRequest(1), started.Sink());
  ASSERT_TRUE(started.Get().ok());
  auto* object = dynamic_cast<LegionObject*>(
      world_.kernel.FindActor(started.Get()->front()));
  ASSERT_NE(object, nullptr);
  ASSERT_TRUE(object->active());
  object->mutable_attributes().Set("progress", 7);
  host->PollQueueNow();  // vacate + restart in one cycle
  EXPECT_GE(host->queue().jobs_vacated(), 1u);
  EXPECT_GE(host->queue().jobs_started(), 2u);
  EXPECT_TRUE(object->active());
  EXPECT_EQ(object->attributes().Get("progress")->as_int(), 7);
  EXPECT_EQ(host->running_count(), 1u);
}

}  // namespace
}  // namespace legion
