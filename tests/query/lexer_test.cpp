#include "query/lexer.h"

#include <gtest/gtest.h>

namespace legion::query {
namespace {

std::vector<TokenKind> KindsOf(const std::string& text) {
  auto tokens = Lex(text);
  EXPECT_TRUE(tokens.ok()) << text;
  std::vector<TokenKind> kinds;
  if (tokens.ok()) {
    for (const auto& token : *tokens) kinds.push_back(token.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputIsJustEnd) {
  EXPECT_EQ(KindsOf(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(KindsOf("   \t\n "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, AttributeReferences) {
  auto tokens = Lex("$host_os_name $load2 $a.b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAttr);
  EXPECT_EQ((*tokens)[0].text, "host_os_name");
  EXPECT_EQ((*tokens)[1].text, "load2");
  EXPECT_EQ((*tokens)[2].text, "a.b");
}

TEST(LexerTest, BareDollarIsError) {
  EXPECT_FALSE(Lex("$").ok());
  EXPECT_FALSE(Lex("$ x").ok());
  EXPECT_FALSE(Lex("$1abc").ok());
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex(R"("plain" "with \"quote\"" "tab\t" "regex 5\..*")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "plain");
  EXPECT_EQ((*tokens)[1].text, "with \"quote\"");
  EXPECT_EQ((*tokens)[2].text, "tab\t");
  // Unknown escapes pass through so regexes survive.
  EXPECT_EQ((*tokens)[3].text, "regex 5\\..*");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Lex("\"oops").ok());
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 -7 3.5 -2.5e3 1e-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -7);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, -2500.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 0.01);
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(KindsOf("== = != < <= > >="),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kEq,
                                    TokenKind::kNe, TokenKind::kLt,
                                    TokenKind::kLe, TokenKind::kGt,
                                    TokenKind::kGe, TokenKind::kEnd}));
}

TEST(LexerTest, BangWithoutEqualsIsError) {
  EXPECT_FALSE(Lex("!x").ok());
  EXPECT_FALSE(Lex("a !").ok());
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(KindsOf("( , )"),
            (std::vector<TokenKind>{TokenKind::kLParen, TokenKind::kComma,
                                    TokenKind::kRParen, TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("match and or not defined");
  ASSERT_TRUE(tokens.ok());
  for (std::size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kIdent);
  }
}

TEST(LexerTest, PaperExampleLexesClean) {
  // The IRIX query from section 3.2.
  auto tokens = Lex(
      "match($host_os_name, \"IRIX\") and "
      "match(\"5\\..*\", $host_os_name)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 14u);  // 13 tokens + end
}

TEST(LexerTest, StrayCharacterIsError) {
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("#comment").ok());
}

TEST(LexerTest, OffsetsPointIntoSource) {
  auto tokens = Lex("abc  $x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 5u);
}

}  // namespace
}  // namespace legion::query
