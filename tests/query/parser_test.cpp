#include "query/parser.h"

#include <gtest/gtest.h>

namespace legion::query {
namespace {

std::string CanonicalOf(const std::string& text) {
  auto expr = Parse(text);
  EXPECT_TRUE(expr.ok()) << text << " -> " << expr.status().ToString();
  return expr.ok() ? (*expr)->ToString() : "";
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(CanonicalOf("42"), "42");
  EXPECT_EQ(CanonicalOf("\"x\""), "\"x\"");
  EXPECT_EQ(CanonicalOf("true"), "true");
  EXPECT_EQ(CanonicalOf("false"), "false");
  EXPECT_EQ(CanonicalOf("$load"), "$load");
}

TEST(ParserTest, Comparisons) {
  EXPECT_EQ(CanonicalOf("$a == 1"), "($a == 1)");
  EXPECT_EQ(CanonicalOf("$a = 1"), "($a == 1)");  // '=' is a synonym
  EXPECT_EQ(CanonicalOf("$a != 1"), "($a != 1)");
  EXPECT_EQ(CanonicalOf("$a < 1"), "($a < 1)");
  EXPECT_EQ(CanonicalOf("$a <= 1"), "($a <= 1)");
  EXPECT_EQ(CanonicalOf("$a > 1"), "($a > 1)");
  EXPECT_EQ(CanonicalOf("$a >= 1"), "($a >= 1)");
}

TEST(ParserTest, BooleanPrecedence) {
  // and binds tighter than or.
  EXPECT_EQ(CanonicalOf("$a and $b or $c"), "(($a and $b) or $c)");
  EXPECT_EQ(CanonicalOf("$a or $b and $c"), "($a or ($b and $c))");
}

TEST(ParserTest, NotBindsTightest) {
  EXPECT_EQ(CanonicalOf("not $a and $b"), "(not ($a) and $b)");
  EXPECT_EQ(CanonicalOf("not not $a"), "not (not ($a))");
}

TEST(ParserTest, ParenthesesOverride) {
  EXPECT_EQ(CanonicalOf("$a and ($b or $c)"), "($a and ($b or $c))");
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_EQ(CanonicalOf("$a AND $b"), "($a and $b)");
  EXPECT_EQ(CanonicalOf("$a Or $b"), "($a or $b)");
  EXPECT_EQ(CanonicalOf("NOT $a"), "not ($a)");
  EXPECT_EQ(CanonicalOf("TRUE"), "true");
}

TEST(ParserTest, MatchPatternFirstForm) {
  // Footnote-corrected order: regex first.
  EXPECT_EQ(CanonicalOf("match(\"5\\..*\", $os)"),
            "match(\"5\\..*\", $os)");
}

TEST(ParserTest, MatchAttrFirstFormSwapsToPattern) {
  // The paper's own first example has the attr first; the literal is
  // the pattern.
  EXPECT_EQ(CanonicalOf("match($os, \"IRIX\")"), "match(\"IRIX\", $os)");
}

TEST(ParserTest, MatchTwoLiteralsKeepsOrder) {
  EXPECT_EQ(CanonicalOf("match(\"a\", \"b\")"), "match(\"a\", \"b\")");
}

TEST(ParserTest, DefinedAndContains) {
  EXPECT_EQ(CanonicalOf("defined($x)"), "defined($x)");
  EXPECT_EQ(CanonicalOf("exists($x)"), "defined($x)");
  EXPECT_EQ(CanonicalOf("contains($list, \"v\")"),
            "contains($list, \"v\")");
}

TEST(ParserTest, UnknownCallBecomesInjected) {
  EXPECT_EQ(CanonicalOf("forecast_load()"), "forecast_load()");
  EXPECT_EQ(CanonicalOf("f($a, 1, \"s\")"), "f($a, 1, \"s\")");
}

TEST(ParserTest, PaperIrixQuery) {
  const std::string canonical = CanonicalOf(
      "match($host_os_name, \"IRIX\") and "
      "match(\"5\\..*\", $host_os_name)");
  EXPECT_EQ(canonical,
            "(match(\"IRIX\", $host_os_name) and "
            "match(\"5\\..*\", $host_os_name))");
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("$a ==").ok());
  EXPECT_FALSE(Parse("($a").ok());
  EXPECT_FALSE(Parse("$a $b").ok());          // trailing input
  EXPECT_FALSE(Parse("and $a").ok());         // keyword as value
  EXPECT_FALSE(Parse("match($a)").ok());      // arity
  EXPECT_FALSE(Parse("match($a, $b, $c)").ok());
  EXPECT_FALSE(Parse("defined(1)").ok());     // needs attr ref
  EXPECT_FALSE(Parse("defined($a, $b)").ok());
  EXPECT_FALSE(Parse("contains($a)").ok());
  EXPECT_FALSE(Parse("f(").ok());
  EXPECT_FALSE(Parse("bare_ident_no_parens").ok());
}

TEST(ParserTest, ComparisonOfCalls) {
  EXPECT_EQ(CanonicalOf("forecast_load() < 0.5"),
            "(forecast_load() < 0.5)");
}

TEST(ParserTest, DeeplyNestedParens) {
  EXPECT_EQ(CanonicalOf("((((($a)))))"), "$a");
}

}  // namespace
}  // namespace legion::query
