#include <gtest/gtest.h>

#include "query/query.h"

namespace legion::query {
namespace {

AttributeDatabase IrixHost(const std::string& version) {
  AttributeDatabase db;
  db.Set("host_os_name", "IRIX");
  db.Set("host_os_version", version);
  db.Set("host_arch", "mips");
  db.Set("host_load", 0.4);
  db.Set("host_cpus", 4);
  db.Set("host_memory_mb", 512);
  db.Set("compatible_vaults",
         AttrValue(AttrList{AttrValue("vault:0/1"), AttrValue("vault:0/2")}));
  return db;
}

bool Eval(const std::string& text, const AttributeDatabase& db,
          const FunctionRegistry* functions = nullptr) {
  auto query = CompiledQuery::Compile(text);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  if (!query.ok()) return false;
  return query->Matches(db, functions);
}

TEST(EvalTest, PaperIrixExample) {
  // "to find all Hosts running with the IRIX operating system version
  // 5.x": match($host_os_name, "IRIX") and match("5\..*", $host_os_version)
  // (the paper applies the second match to the version string).
  const std::string query =
      "match($host_os_name, \"IRIX\") and "
      "match(\"5\\..*\", $host_os_version)";
  EXPECT_TRUE(Eval(query, IrixHost("5.3")));
  EXPECT_TRUE(Eval(query, IrixHost("5.11")));
  EXPECT_FALSE(Eval(query, IrixHost("6.2")));
  AttributeDatabase linux_host = IrixHost("5.3");
  linux_host.Set("host_os_name", "Linux");
  EXPECT_FALSE(Eval(query, linux_host));
}

TEST(EvalTest, FieldMatchingByEquality) {
  auto db = IrixHost("5.3");
  EXPECT_TRUE(Eval("$host_arch == \"mips\"", db));
  EXPECT_FALSE(Eval("$host_arch == \"x86\"", db));
  EXPECT_TRUE(Eval("$host_arch != \"x86\"", db));
  EXPECT_TRUE(Eval("$host_cpus == 4", db));
}

TEST(EvalTest, SemanticComparisons) {
  auto db = IrixHost("5.3");
  EXPECT_TRUE(Eval("$host_load < 0.5", db));
  EXPECT_FALSE(Eval("$host_load > 0.5", db));
  EXPECT_TRUE(Eval("$host_cpus >= 4", db));
  EXPECT_TRUE(Eval("$host_memory_mb >= 256 and $host_memory_mb <= 1024", db));
  // Cross int/double comparison.
  EXPECT_TRUE(Eval("$host_cpus > 3.5", db));
  // String ordering.
  EXPECT_TRUE(Eval("$host_arch < \"x86\"", db));
}

TEST(EvalTest, BooleanCombinations) {
  auto db = IrixHost("5.3");
  EXPECT_TRUE(Eval("$host_load < 0.5 and $host_cpus == 4", db));
  EXPECT_TRUE(Eval("$host_load > 0.5 or $host_cpus == 4", db));
  EXPECT_FALSE(Eval("$host_load > 0.5 and $host_cpus == 4", db));
  EXPECT_TRUE(Eval("not ($host_load > 0.5)", db));
}

TEST(EvalTest, MissingAttributeIsNull) {
  auto db = IrixHost("5.3");
  EXPECT_FALSE(Eval("$no_such_attr == 1", db));
  EXPECT_FALSE(Eval("$no_such_attr < 1", db));
  // != against null is true (they differ).
  EXPECT_TRUE(Eval("$no_such_attr != 1", db));
  EXPECT_FALSE(Eval("defined($no_such_attr)", db));
  EXPECT_TRUE(Eval("defined($host_arch)", db));
  // match on a missing attribute is simply false, not an error.
  EXPECT_FALSE(Eval("match(\"x\", $no_such_attr)", db));
}

TEST(EvalTest, ContainsOnLists) {
  auto db = IrixHost("5.3");
  EXPECT_TRUE(Eval("contains($compatible_vaults, \"vault:0/1\")", db));
  EXPECT_FALSE(Eval("contains($compatible_vaults, \"vault:9/9\")", db));
  // Scalar degrade: contains == equality.
  EXPECT_TRUE(Eval("contains($host_arch, \"mips\")", db));
}

TEST(EvalTest, RegexSearchSemantics) {
  auto db = IrixHost("5.3");
  // Substring search (regexp() semantics), not anchored match.
  EXPECT_TRUE(Eval("match(\"RI\", $host_os_name)", db));
  EXPECT_TRUE(Eval("match(\"^IRIX$\", $host_os_name)", db));
  EXPECT_FALSE(Eval("match(\"^RIX\", $host_os_name)", db));
  EXPECT_TRUE(Eval("match(\"I.I.\", $host_os_name)", db));
}

TEST(EvalTest, BadRegexReportsError) {
  auto query = CompiledQuery::Compile("match(\"[unclosed\", $host_os_name)");
  ASSERT_TRUE(query.ok());  // compiles (pattern checked at eval)
  Status error;
  EXPECT_FALSE(query->Matches(IrixHost("5.3"), nullptr, &error));
  EXPECT_FALSE(error.ok());
}

TEST(EvalTest, TruthyBareValues) {
  auto db = IrixHost("5.3");
  db.Set("flag", true);
  db.Set("zero", 0);
  EXPECT_TRUE(Eval("$flag", db));
  EXPECT_FALSE(Eval("$zero", db));
  EXPECT_TRUE(Eval("true", db));
  EXPECT_FALSE(Eval("false", db));
}

TEST(EvalTest, FunctionInjection) {
  // The paper's planned extension: "the ability for users to install
  // code to dynamically compute new description information".
  FunctionRegistry functions;
  functions.Register("double_load",
                     [](const AttributeDatabase& record,
                        const std::vector<AttrValue>&) -> AttrValue {
                       return AttrValue(
                           record.GetOr("host_load", AttrValue(0.0))
                               .as_double() * 2.0);
                     });
  auto db = IrixHost("5.3");  // load 0.4
  EXPECT_TRUE(Eval("double_load() < 1.0", db, &functions));
  EXPECT_FALSE(Eval("double_load() < 0.5", db, &functions));
}

TEST(EvalTest, InjectedFunctionWithArgs) {
  FunctionRegistry functions;
  functions.Register("scaled",
                     [](const AttributeDatabase& record,
                        const std::vector<AttrValue>& args) -> AttrValue {
                       return AttrValue(
                           record.GetOr("host_load", AttrValue(0.0))
                               .as_double() * args.at(0).as_double());
                     });
  auto db = IrixHost("5.3");
  EXPECT_TRUE(Eval("scaled(10.0) == 4.0", db, &functions));
}

TEST(EvalTest, UnknownFunctionIsEvalError) {
  auto query = CompiledQuery::Compile("mystery() == 1");
  ASSERT_TRUE(query.ok());
  Status error;
  EXPECT_FALSE(query->Matches(IrixHost("5.3"), nullptr, &error));
  EXPECT_EQ(error.code(), ErrorCode::kNotFound);
}

TEST(EvalTest, ShortCircuitSkipsErrors) {
  // "false and <error>" short-circuits without evaluating the error.
  auto db = IrixHost("5.3");
  Status error;
  auto query = CompiledQuery::Compile("false and mystery()");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->Matches(db, nullptr, &error));
  EXPECT_TRUE(error.ok());  // no error surfaced
}

// Parameterized sweep: threshold queries behave monotonically.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, LoadFilterMonotone) {
  const double threshold = GetParam();
  auto db = IrixHost("5.3");  // load 0.4
  const std::string query =
      "$host_load < " + std::to_string(threshold);
  EXPECT_EQ(Eval(query, db), 0.4 < threshold);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.0, 0.1, 0.3999, 0.4, 0.41, 0.5,
                                           1.0, 10.0));

}  // namespace
}  // namespace legion::query
