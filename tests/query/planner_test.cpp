// The query planner (planner.h): which predicates are sargable, how
// plans mirror the boolean structure, and when a plan may claim to be
// exact (the soundness-critical bit -- an exact plan skips the residual
// pass).
#include "query/planner.h"

#include <gtest/gtest.h>

#include "query/compile_cache.h"
#include "query/query.h"

namespace legion::query {
namespace {

std::shared_ptr<const IndexPlan> Plan(const std::string& text) {
  auto query = CompiledQuery::Compile(text);
  EXPECT_TRUE(query.ok()) << text;
  if (!query.ok()) return nullptr;
  // CompiledQuery computes the plan once at compile time.
  const IndexPlan* plan = query->plan();
  if (plan == nullptr) return nullptr;
  return std::make_shared<const IndexPlan>(*plan);
}

TEST(PlannerTest, StringEqualityIsSargableAndExact) {
  auto plan = Plan("$host_arch == \"x86\"");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kPredicate);
  EXPECT_EQ(plan->pred.attr, "host_arch");
  EXPECT_EQ(plan->pred.op, PredicateOp::kEq);
  EXPECT_EQ(plan->pred.literal.as_string(), "x86");
  EXPECT_TRUE(plan->exact);
}

TEST(PlannerTest, NumericEqualityIsSargableButInexact) {
  // The ordered index is keyed as double; int-vs-double coercion keeps
  // the candidate set a superset, so the residual pass stays on.
  auto plan = Plan("$host_cpus == 8");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->pred.op, PredicateOp::kEq);
  EXPECT_FALSE(plan->exact);
}

TEST(PlannerTest, RangesAreSargable) {
  auto plan = Plan("$host_load < 0.5");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->pred.op, PredicateOp::kLt);
  EXPECT_FALSE(plan->exact);
  for (const char* text : {"$host_load <= 0.5", "$host_load > 0.5",
                           "$host_load >= 0.5"}) {
    EXPECT_NE(Plan(text), nullptr) << text;
  }
}

TEST(PlannerTest, FlippedComparisonNormalizes) {
  // `0.5 > $host_load` is `$host_load < 0.5`.
  auto plan = Plan("0.5 > $host_load");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->pred.attr, "host_load");
  EXPECT_EQ(plan->pred.op, PredicateOp::kLt);
  EXPECT_EQ(plan->pred.literal.as_double(), 0.5);
}

TEST(PlannerTest, DefinedIsSargableAndExact) {
  auto plan = Plan("defined($host_cpus)");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->pred.op, PredicateOp::kDefined);
  EXPECT_EQ(plan->pred.attr, "host_cpus");
  EXPECT_TRUE(plan->exact);
}

TEST(PlannerTest, NeverSargableForms) {
  // Records matching these cannot be enumerated from an index.
  for (const char* text : {
           "$host_cpus != 8",
           "match($host_os_name, \"IRIX\")",
           "contains($tags, \"fast\")",
           "not ($host_arch == \"x86\")",
           "$host_load < $host_cpus",   // attr-vs-attr
           "$flag",                     // bare attribute
           "true",
           "forecast() < 1.0",          // injected call
       }) {
    EXPECT_EQ(Plan(text), nullptr) << text;
  }
}

TEST(PlannerTest, AndKeepsSargableSideButDropsExactness) {
  // One sargable conjunct prunes; the dropped match() goes unchecked
  // until the residual pass, so the plan must not claim exactness.
  auto plan = Plan("$host_arch == \"x86\" and match($host_os_name, \"L\")");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kPredicate);
  EXPECT_EQ(plan->pred.attr, "host_arch");
  EXPECT_FALSE(plan->exact);
}

TEST(PlannerTest, AndOfSargablesBuildsAndNode) {
  auto plan = Plan("$host_arch == \"x86\" and $host_load < 0.5 and "
                   "defined($host_cpus)");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kAnd);
  EXPECT_EQ(plan->children.size(), 3u);  // flattened n-ary
  EXPECT_FALSE(plan->exact);  // evaluation prunes through one child only
}

TEST(PlannerTest, OrRequiresBothSides) {
  EXPECT_EQ(Plan("$host_arch == \"x86\" or match($host_os_name, \"L\")"),
            nullptr);
  auto plan = Plan("$host_arch == \"x86\" or $host_arch == \"alpha\"");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kOr);
  EXPECT_EQ(plan->children.size(), 2u);
  // Union of exact branches is exact.
  EXPECT_TRUE(plan->exact);
}

TEST(PlannerTest, OrExactnessNeedsEveryBranchExact) {
  // The left branch collapsed to a lone exact-looking predicate, but it
  // stands in for an `and` with an unchecked match() -- claiming Or
  // exactness here would return false positives.
  auto plan = Plan("($host_arch == \"x86\" and match($host_os_name, \"L\")) "
                   "or $host_arch == \"alpha\"");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kOr);
  EXPECT_FALSE(plan->exact);
}

TEST(PlannerTest, HostMatchQueryShapeIsFullySargable) {
  // The query every scheduler issues: an or of (arch and os) pairs.
  auto plan = Plan(
      "($host_arch == \"x86\" and $host_os_name == \"Linux\") or "
      "($host_arch == \"mips\" and $host_os_name == \"IRIX\")");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, IndexPlan::Kind::kOr);
  ASSERT_EQ(plan->children.size(), 2u);
  for (const IndexPlan& branch : plan->children) {
    EXPECT_EQ(branch.kind, IndexPlan::Kind::kAnd);
    EXPECT_EQ(branch.children.size(), 2u);
  }
  EXPECT_FALSE(plan->exact);  // and-branches prune via one child each
}

TEST(PlannerTest, PlanToStringRoundTrips) {
  auto plan = Plan("$host_load < 0.5 and $host_arch == \"x86\"");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->ToString(), "($host_load < 0.5 and $host_arch == \"x86\")");
}

TEST(PlannerTest, CopiedQueriesShareThePlan) {
  auto query = CompiledQuery::Compile("$host_arch == \"x86\"");
  ASSERT_TRUE(query.ok());
  CompiledQuery copy = *query;
  EXPECT_EQ(copy.plan(), query->plan());
}

// ---- CompileCache boundary conditions (ISSUE 4 satellite) ------------------

std::string QueryText(int i) {
  return "$host_load < " + std::to_string(i) + ".5";
}

TEST(CompileCacheTest, EvictsBeforeInsertNeverExceedsCapacity) {
  // Regression: the insert path used to push the fresh entry first and
  // evict after, so the cache transiently held capacity_+1 entries.
  CompileCache cache(2);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.Get(QueryText(i)).ok());
    EXPECT_LE(cache.size(), cache.capacity()) << "after insert #" << i;
  }
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompileCacheTest, ZeroCapacityDisablesCachingButStillCompiles) {
  // Regression: capacity 0 used to be silently promoted to 1 in the
  // constructor (capacity() reported 1); with evict-after-insert a true
  // zero would have evicted its own fresh entry and left a dangling
  // iterator in the map.  Zero now means "compile-through, retain
  // nothing".
  CompileCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  for (int i = 0; i < 3; ++i) {
    bool hit = true;
    auto compiled = cache.Get(QueryText(0), &hit);
    ASSERT_TRUE(compiled.ok());
    EXPECT_FALSE(hit);  // never served from cache
    EXPECT_EQ(cache.size(), 0u);
  }
  // Compilation itself still works: the result is usable.
  auto bad = cache.Get("$host_load <");
  EXPECT_FALSE(bad.ok());
}

TEST(CompileCacheTest, EvictionIsLeastRecentlyUsed) {
  CompileCache cache(2);
  ASSERT_TRUE(cache.Get(QueryText(0)).ok());
  ASSERT_TRUE(cache.Get(QueryText(1)).ok());
  // Touch #0 so #1 becomes the LRU victim.
  bool hit = false;
  ASSERT_TRUE(cache.Get(QueryText(0), &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get(QueryText(2)).ok());  // evicts #1
  ASSERT_TRUE(cache.Get(QueryText(0), &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get(QueryText(1), &hit).ok());
  EXPECT_FALSE(hit);  // was evicted
}

}  // namespace
}  // namespace legion::query
