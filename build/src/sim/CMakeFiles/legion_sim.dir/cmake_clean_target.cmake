file(REMOVE_RECURSE
  "liblegion_sim.a"
)
