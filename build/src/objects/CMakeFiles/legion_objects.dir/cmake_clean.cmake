file(REMOVE_RECURSE
  "CMakeFiles/legion_objects.dir/class_object.cpp.o"
  "CMakeFiles/legion_objects.dir/class_object.cpp.o.d"
  "CMakeFiles/legion_objects.dir/core_hierarchy.cpp.o"
  "CMakeFiles/legion_objects.dir/core_hierarchy.cpp.o.d"
  "CMakeFiles/legion_objects.dir/legion_object.cpp.o"
  "CMakeFiles/legion_objects.dir/legion_object.cpp.o.d"
  "CMakeFiles/legion_objects.dir/opr.cpp.o"
  "CMakeFiles/legion_objects.dir/opr.cpp.o.d"
  "CMakeFiles/legion_objects.dir/rge.cpp.o"
  "CMakeFiles/legion_objects.dir/rge.cpp.o.d"
  "liblegion_objects.a"
  "liblegion_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
