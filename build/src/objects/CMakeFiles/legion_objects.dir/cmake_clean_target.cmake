file(REMOVE_RECURSE
  "liblegion_objects.a"
)
