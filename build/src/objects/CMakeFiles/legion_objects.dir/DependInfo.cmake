
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/class_object.cpp" "src/objects/CMakeFiles/legion_objects.dir/class_object.cpp.o" "gcc" "src/objects/CMakeFiles/legion_objects.dir/class_object.cpp.o.d"
  "/root/repo/src/objects/core_hierarchy.cpp" "src/objects/CMakeFiles/legion_objects.dir/core_hierarchy.cpp.o" "gcc" "src/objects/CMakeFiles/legion_objects.dir/core_hierarchy.cpp.o.d"
  "/root/repo/src/objects/legion_object.cpp" "src/objects/CMakeFiles/legion_objects.dir/legion_object.cpp.o" "gcc" "src/objects/CMakeFiles/legion_objects.dir/legion_object.cpp.o.d"
  "/root/repo/src/objects/opr.cpp" "src/objects/CMakeFiles/legion_objects.dir/opr.cpp.o" "gcc" "src/objects/CMakeFiles/legion_objects.dir/opr.cpp.o.d"
  "/root/repo/src/objects/rge.cpp" "src/objects/CMakeFiles/legion_objects.dir/rge.cpp.o" "gcc" "src/objects/CMakeFiles/legion_objects.dir/rge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/legion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
