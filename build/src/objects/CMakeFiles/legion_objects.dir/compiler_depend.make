# Empty compiler generated dependencies file for legion_objects.
# This may be replaced when dependencies are built.
