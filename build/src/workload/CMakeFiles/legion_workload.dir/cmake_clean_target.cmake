file(REMOVE_RECURSE
  "liblegion_workload.a"
)
