file(REMOVE_RECURSE
  "CMakeFiles/legion_workload.dir/app_model.cpp.o"
  "CMakeFiles/legion_workload.dir/app_model.cpp.o.d"
  "CMakeFiles/legion_workload.dir/executor.cpp.o"
  "CMakeFiles/legion_workload.dir/executor.cpp.o.d"
  "CMakeFiles/legion_workload.dir/metacomputer.cpp.o"
  "CMakeFiles/legion_workload.dir/metacomputer.cpp.o.d"
  "CMakeFiles/legion_workload.dir/session.cpp.o"
  "CMakeFiles/legion_workload.dir/session.cpp.o.d"
  "liblegion_workload.a"
  "liblegion_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
