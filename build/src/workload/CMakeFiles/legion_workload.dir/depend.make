# Empty dependencies file for legion_workload.
# This may be replaced when dependencies are built.
