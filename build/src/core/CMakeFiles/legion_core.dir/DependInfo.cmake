
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collection.cpp" "src/core/CMakeFiles/legion_core.dir/collection.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/collection.cpp.o.d"
  "/root/repo/src/core/dcd.cpp" "src/core/CMakeFiles/legion_core.dir/dcd.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/dcd.cpp.o.d"
  "/root/repo/src/core/enactor.cpp" "src/core/CMakeFiles/legion_core.dir/enactor.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/enactor.cpp.o.d"
  "/root/repo/src/core/impl_cache.cpp" "src/core/CMakeFiles/legion_core.dir/impl_cache.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/impl_cache.cpp.o.d"
  "/root/repo/src/core/layering.cpp" "src/core/CMakeFiles/legion_core.dir/layering.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/layering.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/legion_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/legion_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/network_object.cpp" "src/core/CMakeFiles/legion_core.dir/network_object.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/network_object.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/legion_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/irs_scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/schedulers/irs_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedulers/irs_scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/k_of_n_scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/schedulers/k_of_n_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedulers/k_of_n_scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/random_scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/schedulers/random_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedulers/random_scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/ranked_scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/schedulers/ranked_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedulers/ranked_scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/stencil_scheduler.cpp" "src/core/CMakeFiles/legion_core.dir/schedulers/stencil_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/schedulers/stencil_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resources/CMakeFiles/legion_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/legion_query.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/legion_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/legion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
