file(REMOVE_RECURSE
  "CMakeFiles/legion_core.dir/collection.cpp.o"
  "CMakeFiles/legion_core.dir/collection.cpp.o.d"
  "CMakeFiles/legion_core.dir/dcd.cpp.o"
  "CMakeFiles/legion_core.dir/dcd.cpp.o.d"
  "CMakeFiles/legion_core.dir/enactor.cpp.o"
  "CMakeFiles/legion_core.dir/enactor.cpp.o.d"
  "CMakeFiles/legion_core.dir/impl_cache.cpp.o"
  "CMakeFiles/legion_core.dir/impl_cache.cpp.o.d"
  "CMakeFiles/legion_core.dir/layering.cpp.o"
  "CMakeFiles/legion_core.dir/layering.cpp.o.d"
  "CMakeFiles/legion_core.dir/migration.cpp.o"
  "CMakeFiles/legion_core.dir/migration.cpp.o.d"
  "CMakeFiles/legion_core.dir/monitor.cpp.o"
  "CMakeFiles/legion_core.dir/monitor.cpp.o.d"
  "CMakeFiles/legion_core.dir/network_object.cpp.o"
  "CMakeFiles/legion_core.dir/network_object.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedule.cpp.o"
  "CMakeFiles/legion_core.dir/schedule.cpp.o.d"
  "CMakeFiles/legion_core.dir/scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedulers/irs_scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/schedulers/irs_scheduler.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedulers/k_of_n_scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/schedulers/k_of_n_scheduler.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedulers/random_scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/schedulers/random_scheduler.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedulers/ranked_scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/schedulers/ranked_scheduler.cpp.o.d"
  "CMakeFiles/legion_core.dir/schedulers/stencil_scheduler.cpp.o"
  "CMakeFiles/legion_core.dir/schedulers/stencil_scheduler.cpp.o.d"
  "liblegion_core.a"
  "liblegion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
