file(REMOVE_RECURSE
  "liblegion_base.a"
)
