# Empty compiler generated dependencies file for legion_base.
# This may be replaced when dependencies are built.
