
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/attributes.cpp" "src/base/CMakeFiles/legion_base.dir/attributes.cpp.o" "gcc" "src/base/CMakeFiles/legion_base.dir/attributes.cpp.o.d"
  "/root/repo/src/base/loid.cpp" "src/base/CMakeFiles/legion_base.dir/loid.cpp.o" "gcc" "src/base/CMakeFiles/legion_base.dir/loid.cpp.o.d"
  "/root/repo/src/base/rng.cpp" "src/base/CMakeFiles/legion_base.dir/rng.cpp.o" "gcc" "src/base/CMakeFiles/legion_base.dir/rng.cpp.o.d"
  "/root/repo/src/base/serialize.cpp" "src/base/CMakeFiles/legion_base.dir/serialize.cpp.o" "gcc" "src/base/CMakeFiles/legion_base.dir/serialize.cpp.o.d"
  "/root/repo/src/base/token.cpp" "src/base/CMakeFiles/legion_base.dir/token.cpp.o" "gcc" "src/base/CMakeFiles/legion_base.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
