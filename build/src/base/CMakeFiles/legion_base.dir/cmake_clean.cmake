file(REMOVE_RECURSE
  "CMakeFiles/legion_base.dir/attributes.cpp.o"
  "CMakeFiles/legion_base.dir/attributes.cpp.o.d"
  "CMakeFiles/legion_base.dir/loid.cpp.o"
  "CMakeFiles/legion_base.dir/loid.cpp.o.d"
  "CMakeFiles/legion_base.dir/rng.cpp.o"
  "CMakeFiles/legion_base.dir/rng.cpp.o.d"
  "CMakeFiles/legion_base.dir/serialize.cpp.o"
  "CMakeFiles/legion_base.dir/serialize.cpp.o.d"
  "CMakeFiles/legion_base.dir/token.cpp.o"
  "CMakeFiles/legion_base.dir/token.cpp.o.d"
  "liblegion_base.a"
  "liblegion_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
