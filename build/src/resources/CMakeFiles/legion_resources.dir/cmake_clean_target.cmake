file(REMOVE_RECURSE
  "liblegion_resources.a"
)
