# Empty compiler generated dependencies file for legion_resources.
# This may be replaced when dependencies are built.
