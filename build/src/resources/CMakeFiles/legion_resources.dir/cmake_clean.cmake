file(REMOVE_RECURSE
  "CMakeFiles/legion_resources.dir/batch_queue_host.cpp.o"
  "CMakeFiles/legion_resources.dir/batch_queue_host.cpp.o.d"
  "CMakeFiles/legion_resources.dir/host_object.cpp.o"
  "CMakeFiles/legion_resources.dir/host_object.cpp.o.d"
  "CMakeFiles/legion_resources.dir/placement_policy.cpp.o"
  "CMakeFiles/legion_resources.dir/placement_policy.cpp.o.d"
  "CMakeFiles/legion_resources.dir/queue_system.cpp.o"
  "CMakeFiles/legion_resources.dir/queue_system.cpp.o.d"
  "CMakeFiles/legion_resources.dir/reservation.cpp.o"
  "CMakeFiles/legion_resources.dir/reservation.cpp.o.d"
  "CMakeFiles/legion_resources.dir/vault_object.cpp.o"
  "CMakeFiles/legion_resources.dir/vault_object.cpp.o.d"
  "liblegion_resources.a"
  "liblegion_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
