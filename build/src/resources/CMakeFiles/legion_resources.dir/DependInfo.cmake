
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/batch_queue_host.cpp" "src/resources/CMakeFiles/legion_resources.dir/batch_queue_host.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/batch_queue_host.cpp.o.d"
  "/root/repo/src/resources/host_object.cpp" "src/resources/CMakeFiles/legion_resources.dir/host_object.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/host_object.cpp.o.d"
  "/root/repo/src/resources/placement_policy.cpp" "src/resources/CMakeFiles/legion_resources.dir/placement_policy.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/placement_policy.cpp.o.d"
  "/root/repo/src/resources/queue_system.cpp" "src/resources/CMakeFiles/legion_resources.dir/queue_system.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/queue_system.cpp.o.d"
  "/root/repo/src/resources/reservation.cpp" "src/resources/CMakeFiles/legion_resources.dir/reservation.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/reservation.cpp.o.d"
  "/root/repo/src/resources/vault_object.cpp" "src/resources/CMakeFiles/legion_resources.dir/vault_object.cpp.o" "gcc" "src/resources/CMakeFiles/legion_resources.dir/vault_object.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objects/CMakeFiles/legion_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/legion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
