file(REMOVE_RECURSE
  "liblegion_query.a"
)
