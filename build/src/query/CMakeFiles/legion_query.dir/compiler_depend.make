# Empty compiler generated dependencies file for legion_query.
# This may be replaced when dependencies are built.
