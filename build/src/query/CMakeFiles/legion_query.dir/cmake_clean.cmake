file(REMOVE_RECURSE
  "CMakeFiles/legion_query.dir/ast.cpp.o"
  "CMakeFiles/legion_query.dir/ast.cpp.o.d"
  "CMakeFiles/legion_query.dir/lexer.cpp.o"
  "CMakeFiles/legion_query.dir/lexer.cpp.o.d"
  "CMakeFiles/legion_query.dir/parser.cpp.o"
  "CMakeFiles/legion_query.dir/parser.cpp.o.d"
  "CMakeFiles/legion_query.dir/query.cpp.o"
  "CMakeFiles/legion_query.dir/query.cpp.o.d"
  "liblegion_query.a"
  "liblegion_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
