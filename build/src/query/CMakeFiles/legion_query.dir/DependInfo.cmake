
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cpp" "src/query/CMakeFiles/legion_query.dir/ast.cpp.o" "gcc" "src/query/CMakeFiles/legion_query.dir/ast.cpp.o.d"
  "/root/repo/src/query/lexer.cpp" "src/query/CMakeFiles/legion_query.dir/lexer.cpp.o" "gcc" "src/query/CMakeFiles/legion_query.dir/lexer.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/query/CMakeFiles/legion_query.dir/parser.cpp.o" "gcc" "src/query/CMakeFiles/legion_query.dir/parser.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/query/CMakeFiles/legion_query.dir/query.cpp.o" "gcc" "src/query/CMakeFiles/legion_query.dir/query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
