# Empty compiler generated dependencies file for batch_federation.
# This may be replaced when dependencies are built.
