file(REMOVE_RECURSE
  "CMakeFiles/batch_federation.dir/batch_federation.cpp.o"
  "CMakeFiles/batch_federation.dir/batch_federation.cpp.o.d"
  "batch_federation"
  "batch_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
