file(REMOVE_RECURSE
  "CMakeFiles/ocean_stencil.dir/ocean_stencil.cpp.o"
  "CMakeFiles/ocean_stencil.dir/ocean_stencil.cpp.o.d"
  "ocean_stencil"
  "ocean_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
