# Empty compiler generated dependencies file for ocean_stencil.
# This may be replaced when dependencies are built.
