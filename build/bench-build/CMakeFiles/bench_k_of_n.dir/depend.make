# Empty dependencies file for bench_k_of_n.
# This may be replaced when dependencies are built.
