file(REMOVE_RECURSE
  "../bench/bench_k_of_n"
  "../bench/bench_k_of_n.pdb"
  "CMakeFiles/bench_k_of_n.dir/bench_k_of_n.cpp.o"
  "CMakeFiles/bench_k_of_n.dir/bench_k_of_n.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k_of_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
