file(REMOVE_RECURSE
  "../bench/bench_reservation"
  "../bench/bench_reservation.pdb"
  "CMakeFiles/bench_reservation.dir/bench_reservation.cpp.o"
  "CMakeFiles/bench_reservation.dir/bench_reservation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
