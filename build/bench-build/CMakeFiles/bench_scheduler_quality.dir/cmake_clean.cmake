file(REMOVE_RECURSE
  "../bench/bench_scheduler_quality"
  "../bench/bench_scheduler_quality.pdb"
  "CMakeFiles/bench_scheduler_quality.dir/bench_scheduler_quality.cpp.o"
  "CMakeFiles/bench_scheduler_quality.dir/bench_scheduler_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
