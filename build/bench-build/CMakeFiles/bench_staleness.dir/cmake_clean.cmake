file(REMOVE_RECURSE
  "../bench/bench_staleness"
  "../bench/bench_staleness.pdb"
  "CMakeFiles/bench_staleness.dir/bench_staleness.cpp.o"
  "CMakeFiles/bench_staleness.dir/bench_staleness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
