file(REMOVE_RECURSE
  "../bench/bench_irs"
  "../bench/bench_irs.pdb"
  "CMakeFiles/bench_irs.dir/bench_irs.cpp.o"
  "CMakeFiles/bench_irs.dir/bench_irs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_irs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
