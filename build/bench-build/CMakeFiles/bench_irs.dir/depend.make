# Empty dependencies file for bench_irs.
# This may be replaced when dependencies are built.
