# Empty dependencies file for bench_collection.
# This may be replaced when dependencies are built.
