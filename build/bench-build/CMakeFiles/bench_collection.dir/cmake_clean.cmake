file(REMOVE_RECURSE
  "../bench/bench_collection"
  "../bench/bench_collection.pdb"
  "CMakeFiles/bench_collection.dir/bench_collection.cpp.o"
  "CMakeFiles/bench_collection.dir/bench_collection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
