file(REMOVE_RECURSE
  "../bench/bench_layering"
  "../bench/bench_layering.pdb"
  "CMakeFiles/bench_layering.dir/bench_layering.cpp.o"
  "CMakeFiles/bench_layering.dir/bench_layering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
