# Empty dependencies file for bench_thrashing.
# This may be replaced when dependencies are built.
