file(REMOVE_RECURSE
  "../bench/bench_thrashing"
  "../bench/bench_thrashing.pdb"
  "CMakeFiles/bench_thrashing.dir/bench_thrashing.cpp.o"
  "CMakeFiles/bench_thrashing.dir/bench_thrashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
