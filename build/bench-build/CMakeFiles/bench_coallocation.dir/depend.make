# Empty dependencies file for bench_coallocation.
# This may be replaced when dependencies are built.
