file(REMOVE_RECURSE
  "../bench/bench_coallocation"
  "../bench/bench_coallocation.pdb"
  "CMakeFiles/bench_coallocation.dir/bench_coallocation.cpp.o"
  "CMakeFiles/bench_coallocation.dir/bench_coallocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
