file(REMOVE_RECURSE
  "CMakeFiles/core_hierarchy_test.dir/objects/core_hierarchy_test.cpp.o"
  "CMakeFiles/core_hierarchy_test.dir/objects/core_hierarchy_test.cpp.o.d"
  "core_hierarchy_test"
  "core_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
