file(REMOVE_RECURSE
  "CMakeFiles/ranked_scheduler_test.dir/core/ranked_scheduler_test.cpp.o"
  "CMakeFiles/ranked_scheduler_test.dir/core/ranked_scheduler_test.cpp.o.d"
  "ranked_scheduler_test"
  "ranked_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranked_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
