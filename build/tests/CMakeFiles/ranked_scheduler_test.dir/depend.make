# Empty dependencies file for ranked_scheduler_test.
# This may be replaced when dependencies are built.
