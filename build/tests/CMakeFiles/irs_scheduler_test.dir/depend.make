# Empty dependencies file for irs_scheduler_test.
# This may be replaced when dependencies are built.
