file(REMOVE_RECURSE
  "CMakeFiles/irs_scheduler_test.dir/core/irs_scheduler_test.cpp.o"
  "CMakeFiles/irs_scheduler_test.dir/core/irs_scheduler_test.cpp.o.d"
  "irs_scheduler_test"
  "irs_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irs_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
