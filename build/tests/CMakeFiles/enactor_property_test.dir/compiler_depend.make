# Empty compiler generated dependencies file for enactor_property_test.
# This may be replaced when dependencies are built.
