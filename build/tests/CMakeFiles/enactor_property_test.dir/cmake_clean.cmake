file(REMOVE_RECURSE
  "CMakeFiles/enactor_property_test.dir/property/enactor_property_test.cpp.o"
  "CMakeFiles/enactor_property_test.dir/property/enactor_property_test.cpp.o.d"
  "enactor_property_test"
  "enactor_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enactor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
