file(REMOVE_RECURSE
  "CMakeFiles/token_test.dir/base/token_test.cpp.o"
  "CMakeFiles/token_test.dir/base/token_test.cpp.o.d"
  "token_test"
  "token_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
