file(REMOVE_RECURSE
  "CMakeFiles/serialize_property_test.dir/property/serialize_property_test.cpp.o"
  "CMakeFiles/serialize_property_test.dir/property/serialize_property_test.cpp.o.d"
  "serialize_property_test"
  "serialize_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
