# Empty dependencies file for reservation_property_test.
# This may be replaced when dependencies are built.
