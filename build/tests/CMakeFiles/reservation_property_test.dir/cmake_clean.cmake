file(REMOVE_RECURSE
  "CMakeFiles/reservation_property_test.dir/property/reservation_property_test.cpp.o"
  "CMakeFiles/reservation_property_test.dir/property/reservation_property_test.cpp.o.d"
  "reservation_property_test"
  "reservation_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
