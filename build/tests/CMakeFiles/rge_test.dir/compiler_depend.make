# Empty compiler generated dependencies file for rge_test.
# This may be replaced when dependencies are built.
