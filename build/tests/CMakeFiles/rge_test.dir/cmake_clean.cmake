file(REMOVE_RECURSE
  "CMakeFiles/rge_test.dir/objects/rge_test.cpp.o"
  "CMakeFiles/rge_test.dir/objects/rge_test.cpp.o.d"
  "rge_test"
  "rge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
