file(REMOVE_RECURSE
  "CMakeFiles/query_lexer_test.dir/query/lexer_test.cpp.o"
  "CMakeFiles/query_lexer_test.dir/query/lexer_test.cpp.o.d"
  "query_lexer_test"
  "query_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
