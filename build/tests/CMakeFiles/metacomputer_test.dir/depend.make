# Empty dependencies file for metacomputer_test.
# This may be replaced when dependencies are built.
