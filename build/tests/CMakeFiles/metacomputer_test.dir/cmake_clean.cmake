file(REMOVE_RECURSE
  "CMakeFiles/metacomputer_test.dir/workload/metacomputer_test.cpp.o"
  "CMakeFiles/metacomputer_test.dir/workload/metacomputer_test.cpp.o.d"
  "metacomputer_test"
  "metacomputer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomputer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
