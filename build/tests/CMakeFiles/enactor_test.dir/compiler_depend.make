# Empty compiler generated dependencies file for enactor_test.
# This may be replaced when dependencies are built.
