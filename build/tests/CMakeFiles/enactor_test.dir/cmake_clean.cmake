file(REMOVE_RECURSE
  "CMakeFiles/enactor_test.dir/core/enactor_test.cpp.o"
  "CMakeFiles/enactor_test.dir/core/enactor_test.cpp.o.d"
  "enactor_test"
  "enactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
