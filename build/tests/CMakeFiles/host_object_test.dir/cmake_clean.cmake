file(REMOVE_RECURSE
  "CMakeFiles/host_object_test.dir/resources/host_object_test.cpp.o"
  "CMakeFiles/host_object_test.dir/resources/host_object_test.cpp.o.d"
  "host_object_test"
  "host_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
