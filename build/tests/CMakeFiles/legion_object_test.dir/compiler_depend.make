# Empty compiler generated dependencies file for legion_object_test.
# This may be replaced when dependencies are built.
