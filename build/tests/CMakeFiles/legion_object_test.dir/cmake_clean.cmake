file(REMOVE_RECURSE
  "CMakeFiles/legion_object_test.dir/objects/legion_object_test.cpp.o"
  "CMakeFiles/legion_object_test.dir/objects/legion_object_test.cpp.o.d"
  "legion_object_test"
  "legion_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
