# Empty compiler generated dependencies file for layering_test.
# This may be replaced when dependencies are built.
