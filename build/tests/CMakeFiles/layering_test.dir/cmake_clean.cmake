file(REMOVE_RECURSE
  "CMakeFiles/layering_test.dir/core/layering_test.cpp.o"
  "CMakeFiles/layering_test.dir/core/layering_test.cpp.o.d"
  "layering_test"
  "layering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
