file(REMOVE_RECURSE
  "CMakeFiles/rmi_protocol_test.dir/integration/rmi_protocol_test.cpp.o"
  "CMakeFiles/rmi_protocol_test.dir/integration/rmi_protocol_test.cpp.o.d"
  "rmi_protocol_test"
  "rmi_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmi_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
