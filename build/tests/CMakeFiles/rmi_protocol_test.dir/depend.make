# Empty dependencies file for rmi_protocol_test.
# This may be replaced when dependencies are built.
