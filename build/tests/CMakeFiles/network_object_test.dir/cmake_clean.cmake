file(REMOVE_RECURSE
  "CMakeFiles/network_object_test.dir/core/network_object_test.cpp.o"
  "CMakeFiles/network_object_test.dir/core/network_object_test.cpp.o.d"
  "network_object_test"
  "network_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
