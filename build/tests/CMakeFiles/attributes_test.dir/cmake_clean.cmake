file(REMOVE_RECURSE
  "CMakeFiles/attributes_test.dir/base/attributes_test.cpp.o"
  "CMakeFiles/attributes_test.dir/base/attributes_test.cpp.o.d"
  "attributes_test"
  "attributes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attributes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
