# Empty compiler generated dependencies file for class_object_test.
# This may be replaced when dependencies are built.
