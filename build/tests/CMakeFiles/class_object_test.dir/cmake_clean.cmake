file(REMOVE_RECURSE
  "CMakeFiles/class_object_test.dir/objects/class_object_test.cpp.o"
  "CMakeFiles/class_object_test.dir/objects/class_object_test.cpp.o.d"
  "class_object_test"
  "class_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
