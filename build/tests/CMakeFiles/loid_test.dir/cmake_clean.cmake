file(REMOVE_RECURSE
  "CMakeFiles/loid_test.dir/base/loid_test.cpp.o"
  "CMakeFiles/loid_test.dir/base/loid_test.cpp.o.d"
  "loid_test"
  "loid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
