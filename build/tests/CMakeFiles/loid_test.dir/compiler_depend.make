# Empty compiler generated dependencies file for loid_test.
# This may be replaced when dependencies are built.
