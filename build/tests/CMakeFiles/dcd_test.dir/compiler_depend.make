# Empty compiler generated dependencies file for dcd_test.
# This may be replaced when dependencies are built.
