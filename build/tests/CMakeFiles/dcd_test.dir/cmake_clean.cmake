file(REMOVE_RECURSE
  "CMakeFiles/dcd_test.dir/core/dcd_test.cpp.o"
  "CMakeFiles/dcd_test.dir/core/dcd_test.cpp.o.d"
  "dcd_test"
  "dcd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
