file(REMOVE_RECURSE
  "CMakeFiles/impl_cache_test.dir/core/impl_cache_test.cpp.o"
  "CMakeFiles/impl_cache_test.dir/core/impl_cache_test.cpp.o.d"
  "impl_cache_test"
  "impl_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
