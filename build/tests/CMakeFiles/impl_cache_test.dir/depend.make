# Empty dependencies file for impl_cache_test.
# This may be replaced when dependencies are built.
