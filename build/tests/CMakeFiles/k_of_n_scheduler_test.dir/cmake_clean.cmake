file(REMOVE_RECURSE
  "CMakeFiles/k_of_n_scheduler_test.dir/core/k_of_n_scheduler_test.cpp.o"
  "CMakeFiles/k_of_n_scheduler_test.dir/core/k_of_n_scheduler_test.cpp.o.d"
  "k_of_n_scheduler_test"
  "k_of_n_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_of_n_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
