# Empty compiler generated dependencies file for k_of_n_scheduler_test.
# This may be replaced when dependencies are built.
