file(REMOVE_RECURSE
  "CMakeFiles/queue_system_test.dir/resources/queue_system_test.cpp.o"
  "CMakeFiles/queue_system_test.dir/resources/queue_system_test.cpp.o.d"
  "queue_system_test"
  "queue_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
