file(REMOVE_RECURSE
  "CMakeFiles/vault_object_test.dir/resources/vault_object_test.cpp.o"
  "CMakeFiles/vault_object_test.dir/resources/vault_object_test.cpp.o.d"
  "vault_object_test"
  "vault_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vault_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
