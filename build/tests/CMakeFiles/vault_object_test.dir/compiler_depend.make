# Empty compiler generated dependencies file for vault_object_test.
# This may be replaced when dependencies are built.
