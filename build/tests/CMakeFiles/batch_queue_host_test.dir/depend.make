# Empty dependencies file for batch_queue_host_test.
# This may be replaced when dependencies are built.
