file(REMOVE_RECURSE
  "CMakeFiles/batch_queue_host_test.dir/resources/batch_queue_host_test.cpp.o"
  "CMakeFiles/batch_queue_host_test.dir/resources/batch_queue_host_test.cpp.o.d"
  "batch_queue_host_test"
  "batch_queue_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_queue_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
