# Empty dependencies file for random_scheduler_test.
# This may be replaced when dependencies are built.
