file(REMOVE_RECURSE
  "CMakeFiles/random_scheduler_test.dir/core/random_scheduler_test.cpp.o"
  "CMakeFiles/random_scheduler_test.dir/core/random_scheduler_test.cpp.o.d"
  "random_scheduler_test"
  "random_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
