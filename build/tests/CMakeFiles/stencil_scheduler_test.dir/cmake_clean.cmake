file(REMOVE_RECURSE
  "CMakeFiles/stencil_scheduler_test.dir/core/stencil_scheduler_test.cpp.o"
  "CMakeFiles/stencil_scheduler_test.dir/core/stencil_scheduler_test.cpp.o.d"
  "stencil_scheduler_test"
  "stencil_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
