# Empty compiler generated dependencies file for stencil_scheduler_test.
# This may be replaced when dependencies are built.
